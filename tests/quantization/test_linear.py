import numpy as np
import pytest

from repro.quantization.linear import LinearQuantizer


class TestLinearQuantizer:
    def test_uniform_data_fills_levels_evenly(self):
        values = np.linspace(0, 1, 1000)
        q = LinearQuantizer(4).fit(values)
        counts = q.level_counts(values)
        assert counts.min() > 200

    def test_boundaries_are_equally_spaced(self):
        q = LinearQuantizer(4).fit(np.array([0.0, 8.0]))
        assert np.allclose(np.diff(q.boundaries), 2.0)

    def test_min_maps_to_level_zero(self):
        q = LinearQuantizer(8).fit(np.array([-2.0, 6.0]))
        assert q.transform(np.array([-2.0]))[0] == 0

    def test_max_maps_to_top_level(self):
        q = LinearQuantizer(8).fit(np.array([-2.0, 6.0]))
        assert q.transform(np.array([6.0]))[0] == 7

    def test_out_of_range_clips(self):
        q = LinearQuantizer(4).fit(np.array([0.0, 1.0]))
        assert q.transform(np.array([-5.0]))[0] == 0
        assert q.transform(np.array([5.0]))[0] == 3

    def test_constant_feature_collapses_to_one_level(self):
        q = LinearQuantizer(4).fit(np.full(10, 3.0))
        assert np.all(q.transform(np.full(5, 3.0)) == 0)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LinearQuantizer(4).transform(np.array([1.0]))

    def test_fit_rejects_empty(self):
        with pytest.raises(ValueError):
            LinearQuantizer(4).fit(np.array([]))

    def test_fit_rejects_nan(self):
        with pytest.raises(ValueError):
            LinearQuantizer(4).fit(np.array([1.0, np.nan]))

    def test_preserves_shape(self):
        q = LinearQuantizer(4).fit(np.linspace(0, 1, 10))
        out = q.transform(np.zeros((3, 5)))
        assert out.shape == (3, 5)

    def test_monotone(self):
        q = LinearQuantizer(8).fit(np.linspace(0, 1, 100))
        values = np.sort(np.random.default_rng(0).random(50))
        levels = q.transform(values)
        assert np.all(np.diff(levels) >= 0)

    def test_skewed_data_wastes_levels(self):
        # The Fig. 3a pathology: heavy skew leaves upper levels nearly empty.
        values = np.exp(np.random.default_rng(0).normal(size=5000))
        q = LinearQuantizer(8).fit(values)
        counts = q.level_counts(values)
        assert counts[0] > 0.7 * counts.sum()

    def test_bits(self):
        assert LinearQuantizer(4).bits == 2
        assert LinearQuantizer(16).bits == 4
        assert LinearQuantizer(3).bits == 2

import numpy as np
import pytest

from repro.analysis.capacity import predict_noise_std, snr_sweep
from repro.analysis.robustness import bit_flip_model, robustness_curve
from repro.lookhd.classifier import LookHDClassifier, LookHDConfig


class TestCapacityPrediction:
    def test_prediction_matches_measurement(self):
        # Eq. 5 analytics: measured cross-talk std tracks the closed form
        # within ~20% across class counts.
        points = snr_sweep(class_grid=(2, 8, 32), dim=1024, n_queries=100)
        for point in points:
            assert point.agreement == pytest.approx(1.0, abs=0.25), point

    def test_noise_grows_with_classes(self):
        points = snr_sweep(class_grid=(2, 8, 32), dim=1024, n_queries=50)
        stds = [p.predicted_noise_std for p in points]
        assert stds[0] < stds[1] < stds[2]

    def test_predict_shape(self):
        rng = np.random.default_rng(0)
        out = predict_noise_std(rng.normal(size=(5, 64)), rng.normal(size=(3, 64)))
        assert out.shape == (5, 3)

    def test_single_class_no_crosstalk(self):
        rng = np.random.default_rng(1)
        out = predict_noise_std(rng.normal(size=(4, 32)), rng.normal(size=(1, 32)))
        assert np.allclose(out, 0.0)


class TestBitFlipModel:
    def test_zero_fraction_is_near_identity(self):
        rng = np.random.default_rng(2)
        model = rng.normal(size=(2, 64))
        out = bit_flip_model(model, 0.0, rng=0)
        assert np.allclose(out, model, atol=1e-6)

    def test_flips_change_values(self):
        rng = np.random.default_rng(3)
        model = rng.normal(size=(2, 256))
        out = bit_flip_model(model, 0.05, rng=0)
        assert not np.allclose(out, model)

    def test_output_bounded_by_input_scale(self):
        rng = np.random.default_rng(4)
        model = rng.normal(size=(1, 128))
        out = bit_flip_model(model, 0.2, rng=1)
        assert np.abs(out).max() <= np.abs(model).max() * (1 + 1e-9)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            bit_flip_model(np.ones((1, 4)), 1.5)

    def test_zero_model_unchanged(self):
        out = bit_flip_model(np.zeros((2, 8)), 0.5, rng=0)
        assert np.all(out == 0)


class TestRobustnessCurve:
    def test_graceful_degradation(self, small_dataset):
        clf = LookHDClassifier(LookHDConfig(dim=1024, levels=4, chunk_size=4))
        clf.fit(small_dataset.train_features, small_dataset.train_labels)
        curve = robustness_curve(
            clf,
            small_dataset.test_features,
            small_dataset.test_labels,
            flip_fractions=(0.0, 0.01, 0.05),
        )
        clean = curve[0].accuracy
        assert clean > 0.85
        # The intro's robustness claim: 1% of stored bits flipped costs
        # almost nothing.
        assert curve[1].accuracy > clean - 0.08
        # And the model is restored afterwards.
        assert clf.score(
            small_dataset.test_features, small_dataset.test_labels
        ) == pytest.approx(clean)

    def test_heavy_flips_actually_degrade(self):
        """Regression: the curve must evaluate the *faulted* model.

        Swapping ``comp.compressed`` without ``mark_dirty()`` left the
        cached search matrix (and fused score table) serving the clean
        model, so every point reported clean accuracy.  Flipping 45% of
        stored bits must visibly hurt."""
        from repro.datasets.synthetic import SyntheticSpec, make_synthetic_classification

        spec = SyntheticSpec(
            n_features=24, n_classes=6, n_train=300, n_test=150, seed=1
        )
        dataset = make_synthetic_classification(spec)
        clf = LookHDClassifier(LookHDConfig(dim=512, levels=4, chunk_size=4, seed=3))
        clf.fit(dataset.train_features, dataset.train_labels)
        clf.predict(dataset.test_features)  # warm the fused engine
        curve = robustness_curve(
            clf,
            dataset.test_features,
            dataset.test_labels,
            flip_fractions=(0.0, 0.45),
        )
        assert curve[0].accuracy > 0.9
        assert curve[1].accuracy < curve[0].accuracy - 0.08

    def test_requires_compression(self, small_dataset):
        clf = LookHDClassifier(
            LookHDConfig(dim=256, levels=4, chunk_size=4, compress=False)
        )
        clf.fit(small_dataset.train_features, small_dataset.train_labels)
        with pytest.raises(ValueError):
            robustness_curve(clf, small_dataset.test_features, small_dataset.test_labels)

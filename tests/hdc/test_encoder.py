import numpy as np
import pytest

from repro.hdc.encoder import RecordEncoder
from repro.hdc.item_memory import LevelItemMemory
from repro.quantization.equalized import EqualizedQuantizer
from repro.quantization.linear import LinearQuantizer


def make_encoder(n_features=8, levels=4, dim=256, seed=0):
    quantizer = LinearQuantizer(levels).fit(np.linspace(0, 1, 100))
    memory = LevelItemMemory(levels, dim, rng=seed)
    return RecordEncoder(quantizer, memory, n_features)


class TestRecordEncoder:
    def test_single_sample_shape(self):
        encoder = make_encoder()
        out = encoder.encode(np.linspace(0, 1, 8))
        assert out.shape == (256,)

    def test_batch_shape(self):
        encoder = make_encoder()
        out = encoder.encode(np.random.default_rng(0).random((5, 8)))
        assert out.shape == (5, 256)

    def test_matches_manual_equation_one(self):
        # H = L(f_1) + rho L(f_2) + ... + rho^(n-1) L(f_n), bit-exact.
        encoder = make_encoder(n_features=4)
        sample = np.array([0.0, 0.3, 0.6, 0.99])
        levels = encoder.quantizer.transform(sample)
        expected = np.zeros(256, dtype=np.int64)
        for i, level in enumerate(levels):
            expected += np.roll(encoder.item_memory[int(level)], i).astype(np.int64)
        assert np.array_equal(encoder.encode(sample), expected)

    def test_feature_order_matters(self):
        encoder = make_encoder(n_features=3)
        a = encoder.encode(np.array([0.0, 0.5, 1.0]))
        b = encoder.encode(np.array([1.0, 0.5, 0.0]))
        assert not np.array_equal(a, b)

    def test_same_input_same_output(self):
        encoder = make_encoder()
        sample = np.random.default_rng(1).random(8)
        assert np.array_equal(encoder.encode(sample), encoder.encode(sample))

    def test_wrong_width_rejected(self):
        encoder = make_encoder(n_features=8)
        with pytest.raises(ValueError):
            encoder.encode(np.zeros(9))

    def test_level_count_mismatch_rejected(self):
        quantizer = LinearQuantizer(4).fit(np.linspace(0, 1, 10))
        memory = LevelItemMemory(8, 64, rng=0)
        with pytest.raises(ValueError):
            RecordEncoder(quantizer, memory, 4)

    def test_encode_many_matches_encode(self):
        encoder = make_encoder()
        batch = np.random.default_rng(2).random((20, 8))
        assert np.array_equal(
            encoder.encode_many(batch, batch_size=7), encoder.encode(batch)
        )

    def test_similar_inputs_encode_similarly(self):
        encoder = make_encoder(n_features=32, dim=2048)
        base = np.full(32, 0.3)
        nearby = base.copy()
        nearby[0] = 0.32
        far = np.full(32, 0.9)
        enc = encoder.encode(np.stack([base, nearby, far])).astype(float)
        sim_near = enc[0] @ enc[1] / (np.linalg.norm(enc[0]) * np.linalg.norm(enc[1]))
        sim_far = enc[0] @ enc[2] / (np.linalg.norm(enc[0]) * np.linalg.norm(enc[2]))
        assert sim_near > sim_far

    def test_works_with_equalized_quantizer(self):
        quantizer = EqualizedQuantizer(4).fit(np.random.default_rng(3).random(500))
        memory = LevelItemMemory(4, 128, rng=1)
        encoder = RecordEncoder(quantizer, memory, 6)
        assert encoder.encode(np.random.default_rng(4).random(6)).shape == (128,)

import numpy as np

from repro.hdc.binary import BinaryHDClassifier
from repro.hdc.classifier import BaselineHDClassifier


class TestBinaryHDClassifier:
    def test_learns_separable_data(self, small_dataset):
        clf = BinaryHDClassifier(dim=1024, levels=8)
        clf.fit(small_dataset.train_features, small_dataset.train_labels)
        assert clf.score(small_dataset.test_features, small_dataset.test_labels) > 0.6

    def test_model_is_one_bit_per_element(self, small_dataset):
        clf = BinaryHDClassifier(dim=1024, levels=8)
        clf.fit(small_dataset.train_features, small_dataset.train_labels)
        non_binary = BaselineHDClassifier(dim=1024, levels=8)
        non_binary.fit(small_dataset.train_features, small_dataset.train_labels)
        assert clf.model_size_bytes() * 32 == non_binary.model_size_bytes()

    def test_binary_at_most_as_accurate_as_nonbinary(self, small_dataset):
        # The Sec. VII claim: binarised models lose accuracy vs LookHD's
        # non-binary model (here: vs the non-binary baseline, with slack
        # for easy datasets where both saturate).
        binary = BinaryHDClassifier(dim=512, levels=8)
        binary.fit(small_dataset.train_features, small_dataset.train_labels)
        full = BaselineHDClassifier(dim=512, levels=8)
        full.fit(small_dataset.train_features, small_dataset.train_labels)
        assert binary.score(
            small_dataset.test_features, small_dataset.test_labels
        ) <= full.score(small_dataset.test_features, small_dataset.test_labels) + 0.05

    def test_single_sample_predict(self, small_dataset):
        clf = BinaryHDClassifier(dim=512, levels=4)
        clf.fit(small_dataset.train_features, small_dataset.train_labels)
        assert isinstance(clf.predict(small_dataset.test_features[0]), (int, np.integer))

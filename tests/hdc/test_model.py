import numpy as np
import pytest

from repro.hdc.model import ClassModel


class TestClassModel:
    def test_starts_at_zero(self):
        model = ClassModel(3, 16)
        assert np.all(model.class_vectors == 0)

    def test_accumulate(self):
        model = ClassModel(2, 4)
        model.accumulate(0, np.array([1, -1, 1, -1]))
        model.accumulate(0, np.array([1, 1, 1, 1]))
        assert model.class_vectors[0].tolist() == [2, 0, 2, 0]
        assert np.all(model.class_vectors[1] == 0)

    def test_accumulate_batch_matches_loop(self):
        rng = np.random.default_rng(0)
        vectors = rng.integers(-5, 5, size=(30, 8))
        labels = rng.integers(0, 3, size=30)
        batched = ClassModel(3, 8)
        batched.accumulate_batch(labels, vectors)
        looped = ClassModel(3, 8)
        for label, vec in zip(labels, vectors):
            looped.accumulate(int(label), vec)
        assert np.array_equal(batched.class_vectors, looped.class_vectors)

    def test_accumulate_batch_repeated_labels(self):
        # np.add.at semantics: duplicates must all land.
        model = ClassModel(2, 2)
        model.accumulate_batch(np.array([0, 0, 0]), np.ones((3, 2), dtype=int))
        assert model.class_vectors[0].tolist() == [3, 3]

    def test_retrain_update(self):
        model = ClassModel(2, 3)
        model.retrain_update(0, 1, np.array([1, 2, 3]))
        assert model.class_vectors[0].tolist() == [1, 2, 3]
        assert model.class_vectors[1].tolist() == [-1, -2, -3]

    def test_class_index_bounds(self):
        model = ClassModel(2, 3)
        with pytest.raises(ValueError):
            model.accumulate(2, np.zeros(3))
        with pytest.raises(ValueError):
            model.retrain_update(0, 5, np.zeros(3))

    def test_predict_nearest_class(self):
        model = ClassModel(2, 4)
        model.accumulate(0, np.array([10, 0, 0, 0]))
        model.accumulate(1, np.array([0, 10, 0, 0]))
        assert model.predict(np.array([5, 1, 0, 0])) == 0
        assert model.predict(np.array([1, 5, 0, 0])) == 1

    def test_predict_batch(self):
        model = ClassModel(2, 2)
        model.accumulate(0, np.array([1, 0]))
        model.accumulate(1, np.array([0, 1]))
        out = model.predict(np.array([[3, 1], [1, 3]]))
        assert out.tolist() == [0, 1]

    def test_normalized_cache_invalidated_on_update(self):
        model = ClassModel(2, 2)
        model.accumulate(0, np.array([1, 0]))
        first = model.normalized.copy()
        model.accumulate(0, np.array([0, 10]))
        assert not np.array_equal(first, model.normalized)

    def test_scores_rank_like_cosine(self):
        rng = np.random.default_rng(1)
        model = ClassModel(4, 32)
        model.accumulate_batch(
            np.arange(4), rng.integers(-10, 10, size=(4, 32))
        )
        query = rng.normal(size=32)
        scores = model.scores(query)
        cosines = [
            float(query @ c / (np.linalg.norm(query) * np.linalg.norm(c)))
            for c in model.class_vectors.astype(float)
        ]
        assert int(np.argmax(scores)) == int(np.argmax(cosines))

    def test_model_size(self):
        model = ClassModel(6, 2000)
        assert model.model_size_bytes(4) == 6 * 2000 * 4

    def test_copy_is_independent(self):
        model = ClassModel(2, 2)
        clone = model.copy()
        model.accumulate(0, np.array([1, 1]))
        assert np.all(clone.class_vectors == 0)

import numpy as np
import pytest

from repro.hdc.ops import (
    ACCUM_DTYPE,
    BIPOLAR_DTYPE,
    bind,
    bundle,
    permute,
    random_bipolar,
    sign_quantize,
    stack_permutations,
)


class TestRandomBipolar:
    def test_values_are_bipolar(self):
        vec = random_bipolar(1000, rng=0)
        assert set(np.unique(vec)) <= {-1, 1}

    def test_dtype(self):
        assert random_bipolar(10, rng=0).dtype == BIPOLAR_DTYPE

    def test_shape_tuple(self):
        assert random_bipolar((3, 7), rng=0).shape == (3, 7)

    def test_deterministic(self):
        assert np.array_equal(random_bipolar(64, rng=5), random_bipolar(64, rng=5))

    def test_roughly_balanced(self):
        vec = random_bipolar(10_000, rng=1).astype(int)
        assert abs(vec.sum()) < 400

    def test_near_orthogonality(self):
        a = random_bipolar(10_000, rng=2).astype(float)
        b = random_bipolar(10_000, rng=3).astype(float)
        cosine = (a @ b) / 10_000
        assert abs(cosine) < 0.05


class TestBind:
    def test_involution(self):
        x = random_bipolar(256, rng=0)
        key = random_bipolar(256, rng=1)
        assert np.array_equal(bind(bind(x, key), key), x)

    def test_self_bind_is_ones(self):
        key = random_bipolar(128, rng=2)
        assert np.all(bind(key, key) == 1)

    def test_broadcasts(self):
        batch = random_bipolar((4, 64), rng=3)
        key = random_bipolar(64, rng=4)
        assert bind(batch, key).shape == (4, 64)

    def test_bound_vector_is_dissimilar(self):
        x = random_bipolar(10_000, rng=5).astype(float)
        key = random_bipolar(10_000, rng=6)
        cosine = (x @ bind(x, key).astype(float)) / 10_000
        assert abs(cosine) < 0.05


class TestBundle:
    def test_elementwise_sum(self):
        vectors = np.array([[1, -1], [1, 1], [-1, 1]], dtype=np.int8)
        assert bundle(vectors).tolist() == [1, 1]

    def test_accumulator_dtype_avoids_overflow(self):
        vectors = np.full((300, 4), 127, dtype=np.int8)
        out = bundle(vectors)
        assert out.dtype == ACCUM_DTYPE
        assert out[0] == 300 * 127

    def test_bundle_is_similar_to_members(self):
        members = random_bipolar((5, 10_000), rng=7).astype(float)
        bundled = bundle(members).astype(float)
        cosine = (bundled @ members[0]) / (
            np.linalg.norm(bundled) * np.linalg.norm(members[0])
        )
        assert cosine > 0.3


class TestPermute:
    def test_inverse(self):
        x = random_bipolar(97, rng=8)
        assert np.array_equal(permute(permute(x, 13), -13), x)

    def test_zero_shift_is_identity(self):
        x = random_bipolar(32, rng=9)
        assert np.array_equal(permute(x, 0), x)

    def test_shift_wraps(self):
        x = np.arange(5)
        assert permute(x, 1).tolist() == [4, 0, 1, 2, 3]

    def test_batch_permutes_last_axis(self):
        batch = np.arange(10).reshape(2, 5)
        out = permute(batch, 1)
        assert out[0].tolist() == [4, 0, 1, 2, 3]

    def test_permuted_vector_nearly_orthogonal(self):
        x = random_bipolar(10_000, rng=10).astype(float)
        cosine = (x @ permute(x, 1).astype(float)) / 10_000
        assert abs(cosine) < 0.05


class TestSignQuantize:
    def test_signs(self):
        out = sign_quantize(np.array([5, -3, 2]))
        assert out.tolist() == [1, -1, 1]

    def test_zeros_become_bipolar(self):
        out = sign_quantize(np.array([0, 0, 0, 0]), rng=0)
        assert set(np.unique(out)) <= {-1, 1}

    def test_zero_tiebreak_deterministic(self):
        a = sign_quantize(np.zeros(64, dtype=int), rng=4)
        b = sign_quantize(np.zeros(64, dtype=int), rng=4)
        assert np.array_equal(a, b)


class TestStackPermutations:
    def test_rows_are_successive_shifts(self):
        x = np.arange(6)
        stacked = stack_permutations(x, 3)
        assert np.array_equal(stacked[0], x)
        assert np.array_equal(stacked[2], np.roll(x, 2))

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            stack_permutations(np.arange(4), 0)

import numpy as np
import pytest

from repro.hdc.classifier import BaselineHDClassifier
from repro.quantization.equalized import EqualizedQuantizer


class TestBaselineHDClassifier:
    def test_learns_separable_data(self, small_dataset):
        clf = BaselineHDClassifier(dim=512, levels=8)
        clf.fit(small_dataset.train_features, small_dataset.train_labels)
        assert clf.score(small_dataset.test_features, small_dataset.test_labels) > 0.8

    def test_retraining_does_not_hurt(self, small_dataset):
        plain = BaselineHDClassifier(dim=512, levels=8)
        plain.fit(small_dataset.train_features, small_dataset.train_labels)
        base_accuracy = plain.score(small_dataset.test_features, small_dataset.test_labels)
        retrained = BaselineHDClassifier(dim=512, levels=8)
        retrained.fit(
            small_dataset.train_features, small_dataset.train_labels, retrain_iterations=5
        )
        accuracy = retrained.score(small_dataset.test_features, small_dataset.test_labels)
        assert accuracy >= base_accuracy - 0.05

    def test_report_counts_iterations(self, small_dataset):
        clf = BaselineHDClassifier(dim=256, levels=4)
        report = clf.fit(
            small_dataset.train_features, small_dataset.train_labels, retrain_iterations=3
        )
        assert 1 <= report.iterations <= 3
        assert len(report.updates_per_iteration) == report.iterations

    def test_early_stop_on_clean_pass(self, small_dataset):
        clf = BaselineHDClassifier(dim=1024, levels=8)
        report = clf.fit(
            small_dataset.train_features, small_dataset.train_labels, retrain_iterations=50
        )
        # A separable problem converges long before 50 passes.
        assert report.iterations < 50

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            BaselineHDClassifier().predict(np.zeros(4))

    def test_single_sample_predict(self, small_dataset):
        clf = BaselineHDClassifier(dim=256, levels=4)
        clf.fit(small_dataset.train_features, small_dataset.train_labels)
        out = clf.predict(small_dataset.test_features[0])
        assert isinstance(out, (int, np.integer))

    def test_custom_quantizer(self, small_dataset):
        clf = BaselineHDClassifier(dim=256, levels=4, quantizer=EqualizedQuantizer(4))
        clf.fit(small_dataset.train_features, small_dataset.train_labels)
        assert clf.score(small_dataset.test_features, small_dataset.test_labels) > 0.7

    def test_quantizer_level_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BaselineHDClassifier(levels=8, quantizer=EqualizedQuantizer(4))

    def test_misaligned_labels_rejected(self, small_dataset):
        clf = BaselineHDClassifier(dim=128, levels=4)
        with pytest.raises(ValueError):
            clf.fit(small_dataset.train_features, small_dataset.train_labels[:-1])

    def test_model_size_scales_with_classes(self, small_dataset):
        clf = BaselineHDClassifier(dim=256, levels=4)
        clf.fit(small_dataset.train_features, small_dataset.train_labels)
        assert clf.model_size_bytes() == small_dataset.n_classes * 256 * 4

    def test_deterministic_given_seed(self, small_dataset):
        scores = []
        for _ in range(2):
            clf = BaselineHDClassifier(dim=256, levels=4, seed=11)
            clf.fit(small_dataset.train_features, small_dataset.train_labels)
            scores.append(clf.score(small_dataset.test_features, small_dataset.test_labels))
        assert scores[0] == scores[1]

    def test_validation_curve_recorded(self, small_dataset):
        clf = BaselineHDClassifier(dim=256, levels=4)
        report = clf.fit(
            small_dataset.train_features,
            small_dataset.train_labels,
            retrain_iterations=2,
            validation=(small_dataset.test_features, small_dataset.test_labels),
        )
        assert len(report.accuracy_per_iteration) == report.iterations

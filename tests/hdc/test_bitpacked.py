import numpy as np
import pytest

from repro.hdc.bitpacked import (
    PackedAssociativeMemory,
    hamming_matches,
    pack_bipolar,
    unpack_bipolar,
    xor_bind,
)
from repro.hdc.ops import random_bipolar


class TestPackUnpack:
    def test_round_trip_exact_multiple_of_64(self):
        vectors = random_bipolar((3, 128), rng=0)
        assert np.array_equal(unpack_bipolar(pack_bipolar(vectors), 128), vectors)

    def test_round_trip_with_padding(self):
        vectors = random_bipolar((2, 100), rng=1)
        assert np.array_equal(unpack_bipolar(pack_bipolar(vectors), 100), vectors)

    def test_single_vector(self):
        vector = random_bipolar(70, rng=2)
        packed = pack_bipolar(vector)
        assert packed.ndim == 1
        assert np.array_equal(unpack_bipolar(packed, 70), vector)

    def test_word_count(self):
        assert pack_bipolar(random_bipolar(65, rng=3)).shape == (2,)
        assert pack_bipolar(random_bipolar(64, rng=4)).shape == (1,)

    def test_memory_reduction(self):
        vectors = random_bipolar((4, 2048), rng=5)
        assert vectors.nbytes / pack_bipolar(vectors).nbytes == 8.0  # int8 -> bits

    def test_rejects_non_bipolar(self):
        with pytest.raises(ValueError):
            pack_bipolar(np.array([1, 0, -1]))


class TestXorBind:
    def test_matches_elementwise_multiplication(self):
        a = random_bipolar(96, rng=6)
        b = random_bipolar(96, rng=7)
        bound = xor_bind(pack_bipolar(a), pack_bipolar(b))
        assert np.array_equal(unpack_bipolar(bound, 96), a * b)

    def test_involution(self):
        a = random_bipolar(128, rng=8)
        key = pack_bipolar(random_bipolar(128, rng=9))
        twice = xor_bind(xor_bind(pack_bipolar(a), key), key)
        assert np.array_equal(unpack_bipolar(twice, 128), a)


class TestHammingMatches:
    def test_identical_vectors_full_match(self):
        vector = random_bipolar(100, rng=10)
        packed = pack_bipolar(vector)
        assert hamming_matches(packed, packed, 100)[0, 0] == 100

    def test_flipped_vector_zero_match(self):
        vector = random_bipolar(100, rng=11)
        assert hamming_matches(pack_bipolar(vector), pack_bipolar(-vector), 100)[0, 0] == 0

    def test_matches_unpacked_computation(self):
        a = random_bipolar((3, 77), rng=12)
        b = random_bipolar((5, 77), rng=13)
        packed = hamming_matches(pack_bipolar(a), pack_bipolar(b), 77)
        direct = (a[:, np.newaxis, :] == b[np.newaxis, :, :]).sum(axis=2)
        assert np.array_equal(packed, direct)

    def test_padding_not_counted(self):
        # Vectors differing only within real bits: padding must not add
        # phantom matches beyond dim.
        a = random_bipolar(65, rng=14)
        matches = hamming_matches(pack_bipolar(a), pack_bipolar(a), 65)
        assert matches[0, 0] == 65


class TestPackedAssociativeMemory:
    def test_classifies_like_dense_hamming(self, small_dataset):
        from repro.hdc.classifier import BaselineHDClassifier

        clf = BaselineHDClassifier(dim=512, levels=4)
        clf.fit(small_dataset.train_features, small_dataset.train_labels)
        memory = PackedAssociativeMemory(clf.model.class_vectors)
        encoded = clf.encode(small_dataset.test_features[:40])
        predictions = memory.predict(np.sign(encoded))
        accuracy = np.mean(predictions == small_dataset.test_labels[:40])
        assert accuracy > 0.6  # binary model: reduced but far above chance

    def test_memory_footprint_one_bit_per_element(self):
        rng = np.random.default_rng(15)
        memory = PackedAssociativeMemory(rng.integers(-5, 6, size=(4, 128)))
        assert memory.memory_bytes() == 4 * 128 // 8

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            PackedAssociativeMemory(np.ones(8))

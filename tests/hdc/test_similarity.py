import numpy as np
import pytest

from repro.hdc.ops import random_bipolar
from repro.hdc.similarity import (
    cosine_similarity,
    dot_similarity,
    hamming_similarity,
    normalize_rows,
)


class TestDotSimilarity:
    def test_scalar_for_two_vectors(self):
        assert dot_similarity(np.array([1, 2]), np.array([3, 4])) == 11.0

    def test_vector_against_matrix(self):
        keys = np.eye(3)
        out = dot_similarity(np.array([1.0, 2.0, 3.0]), keys)
        assert out.tolist() == [1.0, 2.0, 3.0]

    def test_batch_shape(self):
        out = dot_similarity(np.ones((4, 8)), np.ones((3, 8)))
        assert out.shape == (4, 3)

    def test_matrix_against_vector(self):
        out = dot_similarity(np.ones((4, 8)), np.ones(8))
        assert out.shape == (4,)


class TestCosineSimilarity:
    def test_identical_vectors(self):
        x = np.array([1.0, 2.0, 3.0])
        assert cosine_similarity(x, x) == pytest.approx(1.0)

    def test_opposite_vectors(self):
        x = np.array([1.0, -2.0])
        assert cosine_similarity(x, -x) == pytest.approx(-1.0)

    def test_orthogonal_vectors(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 0.0

    def test_scale_invariance(self):
        x = np.array([1.0, 2.0, 3.0])
        y = np.array([2.0, 1.0, 0.5])
        assert cosine_similarity(x, y) == pytest.approx(cosine_similarity(3 * x, 7 * y))

    def test_zero_vector_gives_zero_not_nan(self):
        out = cosine_similarity(np.zeros(4), np.ones(4))
        assert out == 0.0

    def test_batch_shape(self):
        out = cosine_similarity(np.ones((2, 8)), np.ones((5, 8)))
        assert out.shape == (2, 5)

    def test_ranks_match_dot_after_normalisation(self):
        rng = np.random.default_rng(0)
        queries = rng.normal(size=(10, 64))
        keys = rng.normal(size=(6, 64))
        cos_rank = np.argmax(cosine_similarity(queries, keys), axis=1)
        dot_rank = np.argmax(dot_similarity(queries, normalize_rows(keys)), axis=1)
        assert np.array_equal(cos_rank, dot_rank)


class TestHammingSimilarity:
    def test_identical(self):
        x = random_bipolar(128, rng=0)
        assert hamming_similarity(x, x) == 1.0

    def test_flipped(self):
        x = random_bipolar(128, rng=1)
        assert hamming_similarity(x, -x) == 0.0

    def test_random_pairs_near_half(self):
        a = random_bipolar(10_000, rng=2)
        b = random_bipolar(10_000, rng=3)
        assert hamming_similarity(a, b) == pytest.approx(0.5, abs=0.05)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            hamming_similarity(np.ones(4), np.ones(5))

    def test_batch_shape(self):
        out = hamming_similarity(random_bipolar((3, 32), rng=4), random_bipolar((2, 32), rng=5))
        assert out.shape == (3, 2)


class TestNormalizeRows:
    def test_unit_norms(self):
        rng = np.random.default_rng(0)
        out = normalize_rows(rng.normal(size=(5, 16)))
        assert np.allclose(np.linalg.norm(out, axis=1), 1.0)

    def test_zero_rows_preserved(self):
        matrix = np.zeros((2, 4))
        assert np.all(normalize_rows(matrix) == 0)

    def test_single_vector(self):
        out = normalize_rows(np.array([3.0, 4.0]))
        assert out.tolist() == [0.6, 0.8]

import numpy as np
import pytest

from repro.hdc.clustering import ClusteringResult, cluster_purity, hd_kmeans
from repro.lookhd.classifier import LookHDClassifier, LookHDConfig


@pytest.fixture(scope="module")
def encoded_dataset(request):
    # Encode the shared small_dataset with a LookHD encoder once.
    small = request.getfixturevalue("small_dataset")
    clf = LookHDClassifier(LookHDConfig(dim=512, levels=4, chunk_size=4, seed=3))
    clf.fit(small.train_features[:20], small.train_labels[:20])  # fit the encoder
    encoded = clf.encoder.encode_many(small.train_features)
    return encoded, small.train_labels


class TestHdKmeans:
    def test_recovers_class_structure(self, encoded_dataset):
        encoded, labels = encoded_dataset
        result = hd_kmeans(encoded, n_clusters=4, rng=0)
        assert cluster_purity(result.assignments, labels) > 0.8

    def test_assignments_shape_and_range(self, encoded_dataset):
        encoded, _ = encoded_dataset
        result = hd_kmeans(encoded, n_clusters=3, rng=1)
        assert result.assignments.shape == (encoded.shape[0],)
        assert set(np.unique(result.assignments)) <= {0, 1, 2}

    def test_centroids_unit_norm(self, encoded_dataset):
        encoded, _ = encoded_dataset
        result = hd_kmeans(encoded, n_clusters=4, rng=2)
        assert np.allclose(np.linalg.norm(result.centroids, axis=1), 1.0)

    def test_inertia_non_decreasing(self, encoded_dataset):
        encoded, _ = encoded_dataset
        result = hd_kmeans(encoded, n_clusters=4, rng=3)
        history = np.array(result.inertia_history)
        assert np.all(np.diff(history) >= -1e-6)

    def test_converges_on_easy_data(self, encoded_dataset):
        encoded, _ = encoded_dataset
        result = hd_kmeans(encoded, n_clusters=4, max_iterations=50, rng=4)
        assert result.converged
        assert isinstance(result, ClusteringResult)

    def test_k_greater_than_n_rejected(self):
        with pytest.raises(ValueError):
            hd_kmeans(np.ones((3, 8)), n_clusters=5)

    def test_deterministic_given_seed(self, encoded_dataset):
        encoded, _ = encoded_dataset
        a = hd_kmeans(encoded, n_clusters=4, rng=9)
        b = hd_kmeans(encoded, n_clusters=4, rng=9)
        assert np.array_equal(a.assignments, b.assignments)


class TestClusterPurity:
    def test_perfect_clustering(self):
        labels = np.array([0, 0, 1, 1])
        assert cluster_purity(np.array([5, 5, 9, 9]), labels) == 1.0

    def test_random_clustering_low(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 4, size=400)
        assignments = rng.integers(0, 4, size=400)
        assert cluster_purity(assignments, labels) < 0.5

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            cluster_purity(np.zeros(3, dtype=int), np.zeros(4, dtype=int))

import numpy as np
import pytest

from repro.hdc.item_memory import LevelItemMemory, RandomItemMemory


class TestRandomItemMemory:
    def test_shape(self):
        memory = RandomItemMemory(8, 512, rng=0)
        assert memory.vectors.shape == (8, 512)

    def test_values_bipolar(self):
        memory = RandomItemMemory(4, 256, rng=1)
        assert set(np.unique(memory.vectors)) <= {-1, 1}

    def test_deterministic(self):
        a = RandomItemMemory(4, 128, rng=7)
        b = RandomItemMemory(4, 128, rng=7)
        assert np.array_equal(a.vectors, b.vectors)

    def test_pairwise_near_orthogonal(self):
        memory = RandomItemMemory(6, 10_000, rng=2)
        sims = memory.cross_similarity()
        off_diagonal = sims[~np.eye(6, dtype=bool)]
        assert np.abs(off_diagonal).max() < 0.06

    def test_indexing_with_array(self):
        memory = RandomItemMemory(5, 64, rng=3)
        out = memory[np.array([0, 0, 2])]
        assert out.shape == (3, 64)
        assert np.array_equal(out[0], out[1])

    def test_len(self):
        assert len(RandomItemMemory(9, 32, rng=0)) == 9


class TestLevelItemMemory:
    def test_neighbours_are_similar(self):
        memory = LevelItemMemory(8, 10_000, rng=0)
        assert np.all(memory.neighbour_similarity() > 0.7)

    def test_endpoints_nearly_orthogonal(self):
        memory = LevelItemMemory(8, 10_000, rng=1)
        assert abs(memory.endpoint_similarity()) < 0.35

    def test_similarity_decays_with_distance(self):
        # The distance-preserving alphabet property of Sec. II-A: similarity
        # between L_1 and L_i falls monotonically (modulo noise) with i.
        memory = LevelItemMemory(8, 10_000, rng=2)
        first = memory[0].astype(float)
        sims = [
            float(first @ memory[i].astype(float)) / 10_000 for i in range(8)
        ]
        assert sims[0] == pytest.approx(1.0)
        assert sims[1] > sims[4] > sims[7]

    def test_single_level(self):
        memory = LevelItemMemory(1, 128, rng=3)
        assert memory.vectors.shape == (1, 128)
        assert memory.neighbour_similarity().size == 0

    def test_deterministic(self):
        a = LevelItemMemory(4, 256, rng=9)
        b = LevelItemMemory(4, 256, rng=9)
        assert np.array_equal(a.vectors, b.vectors)

    def test_values_bipolar(self):
        memory = LevelItemMemory(4, 512, rng=4)
        assert set(np.unique(memory.vectors)) <= {-1, 1}

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            LevelItemMemory(0, 128)
        with pytest.raises(ValueError):
            LevelItemMemory(4, 0)

"""Tests for the self-healing runtime (repro.resilience)."""

"""Chaos bench: end-to-end fault→detect→repair run + schema gates."""

from __future__ import annotations

import copy
import json

import pytest

from repro.resilience import validate_resilience_payload
from repro.resilience.chaos import ChaosConfig, chaos_config, write_resilience_file


#: A deliberately tiny run — the CI smoke profile exercises real scale;
#: this keeps the tier-1 suite fast while still driving every scenario.
_TINY = ChaosConfig(
    dim=256,
    n_features=16,
    n_classes=3,
    n_train=120,
    n_test=60,
    seed=5,
    n_requests=80,
    concurrency=8,
    inject_after=10,
    scrub_blocks_per_tick=64,
    overhead_requests=40,
    overhead_repeats=1,
)


@pytest.fixture(scope="module")
def payload(tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("chaos")
    path = write_resilience_file(profile="smoke", out_dir=out_dir, config=_TINY)
    return json.loads(path.read_text())


class TestChaosConfig:
    def test_profiles_resolve(self):
        assert chaos_config("full").dim > chaos_config("smoke").dim
        with pytest.raises(ValueError, match="profile"):
            chaos_config("nope")

    def test_validation(self):
        with pytest.raises(ValueError, match="inject_after"):
            ChaosConfig(n_requests=10, inject_after=10)
        with pytest.raises(ValueError, match="n_workers"):
            ChaosConfig(n_workers=1)


class TestChaosRun:
    def test_payload_passes_its_own_schema(self, payload):
        validate_resilience_payload(payload)

    def test_serving_fault_detected_repaired_bit_identical(self, payload):
        serving = payload["serving"]
        assert serving["detected"] is True
        assert serving["repaired"] is True
        assert serving["detection_seconds"] >= 0.0
        assert serving["repair_seconds"] >= serving["detection_seconds"]
        assert serving["post_repair_bit_identical"] is True
        assert serving["injection"]["elements_flipped"] >= 1
        assert serving["scrub"]["repairs"] >= 1

    def test_training_kill_recovers_bit_identically(self, payload):
        training = payload["training"]
        assert training["counters_bit_identical"] is True
        assert training["class_vectors_bit_identical"] is True
        if training["parallel_executed"]:
            assert training["respawns"] >= 1

    def test_overhead_measured(self, payload):
        overhead = payload["overhead"]
        assert overhead["baseline_seconds"] > 0.0
        assert overhead["scrub_attached_seconds"] > 0.0
        assert isinstance(overhead["within_budget"], bool)


class TestSchemaGates:
    """The schema *is* the chaos gate: unhealed runs do not validate."""

    def test_failed_recovery_rejected(self, payload):
        for gate in (
            "derived_fault_detected",
            "derived_fault_repaired",
            "post_repair_bit_identical",
            "training_counters_bit_identical",
        ):
            broken = copy.deepcopy(payload)
            broken["checks"][gate] = False
            with pytest.raises(ValueError, match=gate):
                validate_resilience_payload(broken)

    def test_phantom_respawn_rejected(self, payload):
        broken = copy.deepcopy(payload)
        broken["training"]["parallel_executed"] = True
        broken["training"]["respawns"] = 0
        with pytest.raises(ValueError, match="respawns"):
            validate_resilience_payload(broken)

    def test_structural_violations_rejected(self, payload):
        with pytest.raises(ValueError, match="JSON object"):
            validate_resilience_payload([])
        broken = copy.deepcopy(payload)
        broken["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            validate_resilience_payload(broken)
        broken = copy.deepcopy(payload)
        del broken["serving"]["injection"]
        with pytest.raises(ValueError, match="injection"):
            validate_resilience_payload(broken)

"""Integrity guard + scrubber: detect silent corruption, repair, degrade.

Every test fits its own classifier — these tests *corrupt* model state in
place, so sharing the session-scoped fixture would poison the suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import SyntheticSpec, make_synthetic_classification
from repro.faults import inject_live_fault
from repro.lookhd.classifier import LookHDClassifier, LookHDConfig
from repro.resilience import IntegrityError, IntegrityGuard, Scrubber


@pytest.fixture(scope="module")
def data():
    return make_synthetic_classification(
        SyntheticSpec(n_features=20, n_classes=4, n_train=160, n_test=80, seed=9),
        name="integrity",
    )


@pytest.fixture
def clf(data):
    """A fresh fitted classifier per test (tests mutate it destructively)."""
    model = LookHDClassifier(LookHDConfig(dim=256, levels=4, chunk_size=4, seed=2))
    model.fit(data.train_features, data.train_labels)
    return model


def _detect(guard: IntegrityGuard) -> list[IntegrityError]:
    errors = guard.verify_all()
    assert errors, "corruption was not detected by a full sweep"
    return errors


class TestIntegrityGuard:
    def test_clean_state_verifies_clean(self, clf):
        guard = IntegrityGuard(clf)
        assert guard.verify_all() == []
        assert guard.blocks_verified > 0
        assert guard.canary_checks == 1

    def test_requires_fitted_classifier(self):
        with pytest.raises(RuntimeError, match="fitted"):
            IntegrityGuard(LookHDClassifier(LookHDConfig(dim=256)))

    def test_score_table_corruption_detected_and_rebuilt(self, clf, data):
        guard = IntegrityGuard(clf)
        clean = np.asarray(clf.predict(data.test_features))
        inject_live_fault(clf, "score_table", ber=1e-4, seed=1)
        errors = _detect(guard)
        assert any(e.artifact == "score_table" for e in errors)
        report = guard.repair(next(e for e in errors if e.artifact == "score_table"))
        assert report.action == "rebuilt_derived"
        assert report.repaired
        assert guard.verify_all() == []
        assert np.array_equal(np.asarray(clf.predict(data.test_features)), clean)
        assert not guard.degraded

    def test_prebound_corruption_detected_and_rebuilt(self, clf, data):
        guard = IntegrityGuard(clf)
        clean = np.asarray(clf.predict(data.test_features))
        inject_live_fault(clf, "prebound_table", ber=1e-4, seed=2)
        errors = _detect(guard)
        assert any(e.artifact == "prebound_table" for e in errors)
        report = guard.repair(errors[0])
        assert report.repaired
        assert np.array_equal(np.asarray(clf.predict(data.test_features)), clean)

    def test_model_corruption_rebuilt_from_counters(self, clf, data):
        guard = IntegrityGuard(clf)
        clean = np.asarray(clf.predict(data.test_features))
        # Silent in-place damage to authoritative model state: no version
        # bump, no cache invalidation — exactly what a BRAM flip looks like.
        clf.class_model.class_vectors[0, 0] += 17
        errors = _detect(guard)
        target = next(e for e in errors if e.artifact == "class_vectors")
        assert target.kind == "authoritative"
        report = guard.repair(target)
        assert report.action == "rebuilt_from_counters"
        assert report.repaired
        assert guard.verify_all() == []
        assert np.array_equal(np.asarray(clf.predict(data.test_features)), clean)

    def test_compressed_corruption_rebuilt_from_counters(self, clf, data):
        guard = IntegrityGuard(clf)
        clean = np.asarray(clf.predict(data.test_features))
        inject_live_fault(clf, "compressed", ber=1e-3, seed=3)
        errors = _detect(guard)
        report = guard.repair(errors[0])
        assert report.action == "rebuilt_from_counters"
        assert np.array_equal(np.asarray(clf.predict(data.test_features)), clean)

    def test_unrepairable_state_degrades_to_reference(self, clf, data):
        guard = IntegrityGuard(clf)
        # Positions are not rebuildable from counters: the only honest move
        # is to degrade and surface it.
        clf.encoder.position_memory.vectors[0, 0] *= -1
        errors = _detect(guard)
        target = next(e for e in errors if e.artifact == "positions")
        report = guard.repair(target)
        assert report.action == "degraded_reference"
        assert not report.repaired
        assert guard.degraded
        assert clf.serve_reference
        # Serving continues (reference path), and the re-recorded baseline
        # means the guard does not re-alert on the same latched damage.
        assert clf.predict(data.test_features).shape == (data.test_features.shape[0],)
        assert guard.verify_all() == []

    def test_legitimate_mutation_is_not_corruption(self, clf):
        guard = IntegrityGuard(clf)
        # A version bump is the classifier's declared mutation protocol;
        # the guard must resync, not alert.
        clf.class_model.mark_dirty()
        assert guard.verify_all() == []
        assert not guard.degraded

    def test_counters_intact_reflects_damage(self, clf):
        guard = IntegrityGuard(clf)
        assert guard.counters_intact()
        clf.trainer.counters[0].counts[0, 0] += 1
        assert not guard.counters_intact()


class TestScrubber:
    def test_incremental_ticks_detect_and_repair(self, clf, data):
        guard = IntegrityGuard(clf)
        scrubber = Scrubber(guard, blocks_per_tick=4, canary_every=4)
        clean = np.asarray(clf.predict(data.test_features))
        inject_live_fault(clf, "score_table", ber=1e-4, seed=4)
        for _ in range(2_000):
            scrubber.tick()
            if scrubber.repairs:
                break
        assert scrubber.errors_detected >= 1
        assert scrubber.repairs == 1
        assert scrubber.last_repair["action"] == "rebuilt_derived"
        assert np.array_equal(np.asarray(clf.predict(data.test_features)), clean)

    def test_disabled_tick_is_a_noop(self, clf):
        scrubber = Scrubber(IntegrityGuard(clf), enabled=False)
        verified_before = scrubber.guard.blocks_verified
        assert scrubber.tick() == []
        assert scrubber.ticks == 0
        assert scrubber.guard.blocks_verified == verified_before

    def test_auto_repair_off_records_without_touching(self, clf):
        guard = IntegrityGuard(clf)
        scrubber = Scrubber(guard, blocks_per_tick=10_000, auto_repair=False)
        clf.class_model.class_vectors[0, 0] += 5
        scrubber.tick()
        assert scrubber.errors_detected >= 1
        assert scrubber.last_error is not None
        assert scrubber.repairs == 0
        assert scrubber.last_repair is None

    def test_status_snapshot_shape(self, clf):
        scrubber = Scrubber(IntegrityGuard(clf))
        scrubber.tick()
        status = scrubber.status()
        for key in (
            "enabled",
            "auto_repair",
            "ticks",
            "blocks_verified",
            "canary_checks",
            "errors_detected",
            "repairs",
            "degraded",
            "last_error",
            "last_repair",
        ):
            assert key in status
        assert status["ticks"] == 1
        assert status["degraded"] is False

    def test_validation(self, clf):
        guard = IntegrityGuard(clf)
        with pytest.raises(ValueError, match="blocks_per_tick"):
            Scrubber(guard, blocks_per_tick=0)
        with pytest.raises(ValueError, match="canary_every"):
            Scrubber(guard, canary_every=0)

"""Deadline and bounded-retry primitives: typed, deterministic, budgeted."""

from __future__ import annotations

import pytest

from repro.resilience.retry import (
    Deadline,
    DeadlineExceededError,
    RetryBudgetExceededError,
    backoff_delays,
    retry_call,
)


class TestDeadline:
    def test_typed_timeout_subclass_with_context(self):
        error = DeadlineExceededError(0.25, 0.1, what="scrub")
        assert isinstance(error, TimeoutError)
        assert error.waited_seconds == pytest.approx(0.25)
        assert error.budget_seconds == pytest.approx(0.1)
        assert "scrub" in str(error)

    def test_remaining_counts_down_and_expires(self):
        deadline = Deadline(10.0)
        now = deadline.started_at
        assert deadline.remaining(now=now + 4.0) == pytest.approx(6.0)
        assert not deadline.expired(now=now + 9.0)
        assert deadline.expired(now=now + 10.5)
        assert deadline.remaining(now=now + 99.0) == 0.0  # never negative

    def test_check_raises_typed_when_spent(self):
        deadline = Deadline(1.0)
        deadline.check(now=deadline.started_at + 0.5)  # within budget: no-op
        with pytest.raises(DeadlineExceededError) as excinfo:
            deadline.check("the batch", now=deadline.started_at + 2.0)
        assert excinfo.value.budget_seconds == pytest.approx(1.0)

    @pytest.mark.parametrize("budget", [0.0, -1.0])
    def test_rejects_non_positive_budget(self, budget):
        with pytest.raises(ValueError, match="budget_seconds"):
            Deadline(budget)


class TestBackoffDelays:
    def test_exponential_without_jitter(self):
        delays = list(backoff_delays(4, base_delay=0.1, max_delay=10.0, jitter=0.0))
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.8])

    def test_capped_at_max_delay(self):
        delays = list(backoff_delays(6, base_delay=1.0, max_delay=2.0, jitter=0.0))
        assert max(delays) == pytest.approx(2.0)

    def test_jitter_is_seeded_and_bounded(self):
        first = list(backoff_delays(5, jitter=0.5, rng=42))
        second = list(backoff_delays(5, jitter=0.5, rng=42))
        assert first == second  # reproducible schedule
        unjittered = list(backoff_delays(5, jitter=0.0))
        for jittered, base in zip(first, unjittered):
            assert 0.5 * base <= jittered <= 1.5 * base

    def test_validation(self):
        with pytest.raises(ValueError, match="retries"):
            list(backoff_delays(-1))
        with pytest.raises(ValueError, match="base_delay"):
            list(backoff_delays(1, base_delay=2.0, max_delay=1.0))
        with pytest.raises(ValueError, match="jitter"):
            list(backoff_delays(1, jitter=1.5))


class TestRetryCall:
    def test_transient_failures_absorbed(self):
        sleeps = []
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise ConnectionError("transient")
            return "answer"

        result = retry_call(flaky, retries=3, rng=0, sleep=sleeps.append)
        assert result == "answer"
        assert attempts["n"] == 3
        assert len(sleeps) == 2  # one backoff per failed attempt

    def test_non_transient_error_propagates_immediately(self):
        attempts = {"n": 0}

        def buggy():
            attempts["n"] += 1
            raise ValueError("a bug, not weather")

        with pytest.raises(ValueError):
            retry_call(buggy, retries=5, sleep=lambda _: None)
        assert attempts["n"] == 1

    def test_budget_exhaustion_typed_with_cause(self):
        def always_down():
            raise OSError("still down")

        with pytest.raises(RetryBudgetExceededError) as excinfo:
            retry_call(always_down, retries=2, rng=0, sleep=lambda _: None)
        assert excinfo.value.attempts == 3  # first call + 2 retries
        assert isinstance(excinfo.value.last_error, OSError)
        assert isinstance(excinfo.value.__cause__, OSError)

    def test_deadline_bounds_the_retry_loop(self):
        deadline = Deadline(0.001)
        deadline.started_at -= 1.0  # already spent

        def always_down():
            raise TimeoutError("slow dependency")

        with pytest.raises(DeadlineExceededError):
            retry_call(
                always_down, retries=10, deadline=deadline, sleep=lambda _: None
            )

    def test_on_retry_observer(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise OSError("transient")
            return 7

        retry_call(
            flaky,
            retries=5,
            rng=0,
            sleep=lambda _: None,
            on_retry=lambda attempt, error, delay: seen.append(
                (attempt, type(error).__name__, delay)
            ),
        )
        assert [entry[0] for entry in seen] == [1, 2]
        assert all(entry[1] == "OSError" for entry in seen)

"""Persistence corruption → typed error → rebuild → bit-identical save.

The satellite round trip: a checksum-failing artifact must be rejected
with a typed :class:`ArtifactError`, and an in-memory corruption repaired
from counters must serialise to the *same* checksum manifest as a save
taken before the damage — recovery is exact, not approximate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import SyntheticSpec, make_synthetic_classification
from repro.lookhd.classifier import LookHDClassifier, LookHDConfig
from repro.lookhd.persistence import (
    ArtifactError,
    array_digest,
    artifact_checksums,
    load_classifier,
    save_classifier,
)
from repro.resilience import IntegrityGuard


@pytest.fixture(scope="module")
def data():
    return make_synthetic_classification(
        SyntheticSpec(n_features=20, n_classes=4, n_train=160, n_test=80, seed=13),
        name="roundtrip",
    )


@pytest.fixture
def clf(data):
    model = LookHDClassifier(LookHDConfig(dim=256, levels=4, chunk_size=4, seed=4))
    model.fit(data.train_features, data.train_labels)
    return model


def _tamper_array(path, name):
    """Rewrite the artifact with one array modified, manifest untouched."""
    with np.load(path, allow_pickle=False) as archive:
        arrays = {key: archive[key] for key in archive.files}
    damaged = arrays[name].copy()
    damaged.flat[0] += 1
    arrays[name] = damaged
    np.savez_compressed(path, **arrays)


def test_checksum_failing_artifact_raises_typed(clf, tmp_path):
    path = save_classifier(clf, tmp_path / "model.npz")
    _tamper_array(path, "class_vectors")
    with pytest.raises(ArtifactError, match="checksum"):
        load_classifier(path)


def test_manifest_readable_without_loading(clf, tmp_path):
    path = save_classifier(clf, tmp_path / "model.npz")
    manifest = artifact_checksums(path)
    assert manifest["class_vectors"] == array_digest(clf.class_model.class_vectors)
    with pytest.raises(FileNotFoundError):
        artifact_checksums(tmp_path / "missing.npz")


def test_corruption_repair_roundtrip_bit_identical(clf, data, tmp_path):
    # Baseline recorded while the state is known-good: the guard's digests
    # and a clean on-disk save.
    guard = IntegrityGuard(clf)
    clean_path = save_classifier(clf, tmp_path / "clean.npz")
    clean_manifest = artifact_checksums(clean_path)
    clean_predictions = np.asarray(clf.predict(data.test_features))

    # Silent in-memory damage to the class model (no version bump).
    clf.class_model.class_vectors[1, 2] -= 9
    assert array_digest(clf.class_model.class_vectors) != clean_manifest["class_vectors"]

    errors = guard.verify_all()
    target = next(e for e in errors if e.artifact == "class_vectors")
    report = guard.repair(target)
    assert report.action == "rebuilt_from_counters"
    assert report.repaired

    # The rebuilt state serialises to the *same* checksum manifest as the
    # pre-damage save — bit-identity on disk, not just equal accuracy.
    repaired_path = save_classifier(clf, tmp_path / "repaired.npz")
    assert artifact_checksums(repaired_path) == clean_manifest
    assert np.array_equal(np.asarray(clf.predict(data.test_features)), clean_predictions)

    # And the repaired artifact loads cleanly through checksum verification.
    restored = load_classifier(repaired_path)
    assert np.array_equal(
        np.asarray(restored.predict(data.test_features)), clean_predictions
    )

"""FleetScrubber: round-robin fleet scrubbing, swap/eviction awareness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lookhd.classifier import LookHDClassifier, LookHDConfig
from repro.resilience import FleetScrubber, IntegrityGuard
from repro.serving import ModelRegistry


def _fit(dataset, seed):
    clf = LookHDClassifier(LookHDConfig(dim=512, levels=4, chunk_size=4, seed=seed))
    clf.fit(dataset.train_features, dataset.train_labels)
    return clf


@pytest.fixture
def registry(small_dataset):
    fleet = ModelRegistry()
    for seed, tenant in ((3, "alpha"), (11, "beta")):
        fleet.publish(tenant, _fit(small_dataset, seed))
    return fleet


def test_config_validation(registry):
    with pytest.raises(ValueError, match="blocks_per_tick"):
        FleetScrubber(registry, blocks_per_tick=0)
    with pytest.raises(ValueError, match="canary_every"):
        FleetScrubber(registry, canary_every=0)


def test_round_robin_scrubs_every_tenant(registry):
    scrubber = FleetScrubber(registry, blocks_per_tick=4)
    for _ in range(6):
        assert scrubber.tick() == []
    status = scrubber.status()
    assert status["ticks"] == 6
    assert sorted(status["tenants"]) == ["alpha", "beta"]
    for tenant in ("alpha", "beta"):
        sub = status["tenants"][tenant]
        assert sub["ticks"] == 3  # 6 fleet ticks, 2 tenants
        assert sub["bound"] is True
        assert sub["derived_guarded"] is True
    assert status["blocks_verified"] > 0
    assert status["degraded"] is False
    # Same top-level keys the server health probe reads off Scrubber.status().
    for key in ("enabled", "degraded", "errors_detected", "repairs", "ticks"):
        assert key in status


def test_disabled_tick_is_noop(registry):
    scrubber = FleetScrubber(registry, enabled=False)
    assert scrubber.tick() == []
    assert scrubber.status()["ticks"] == 0
    assert scrubber.guard_builds == 0


def test_detects_and_repairs_corruption_in_one_tenant(registry):
    scrubber = FleetScrubber(registry, blocks_per_tick=1_000_000)
    for _ in range(2):
        scrubber.tick()  # baselines for both tenants
    victim = registry.record("alpha").classifier
    victim.class_model.class_vectors[0, :5] += 17  # silent corruption
    detected = []
    for _ in range(4):
        detected += scrubber.tick()
    assert any(error.artifact == "class_vectors" for error in detected)
    status = scrubber.status()
    assert status["errors_detected"] >= 1
    assert status["repairs"] >= 1  # rebuilt from intact counters
    assert status["degraded"] is False
    assert status["tenants"]["beta"]["errors_detected"] == 0


def test_mid_scrub_hot_swap_rebuilds_guard(small_dataset, registry):
    scrubber = FleetScrubber(registry, blocks_per_tick=4)
    for _ in range(4):
        scrubber.tick()
    builds_before = scrubber.guard_builds
    # Swap alpha between ticks: a replacement with *different* geometry
    # would trip "geometry changed" alarms if the stale guard survived.
    registry.publish("alpha", _fit(small_dataset, 23))
    errors = []
    for _ in range(4):
        errors += scrubber.tick()
    assert errors == []
    assert scrubber.guard_builds == builds_before + 1
    status = scrubber.status()
    assert status["tenants"]["alpha"]["version"] == 2
    assert status["degraded"] is False


def test_evicted_tenant_scrubbed_without_rebinding(small_dataset, registry):
    bytes_each = registry.record("alpha").classifier.warm_tables()
    budgeted = ModelRegistry(cache_budget_bytes=bytes_each)
    budgeted.publish("alpha", registry.record("alpha").classifier)
    budgeted.publish("beta", registry.record("beta").classifier)  # evicts alpha
    assert not budgeted.record("alpha").bound

    scrubber = FleetScrubber(budgeted, blocks_per_tick=8, canary_every=1)
    for _ in range(6):
        assert scrubber.tick() == []
    # The scrub loop must not have materialised what the LRU evicted —
    # probing derived caches would silently defeat the byte budget.
    assert not budgeted.record("alpha").bound
    assert budgeted.record("alpha").classifier.serving_table_bytes() == 0
    status = scrubber.status()
    assert status["tenants"]["alpha"]["derived_guarded"] is False
    assert status["tenants"]["beta"]["derived_guarded"] is True

    # Lazy rebind flips the binding state; the next tick rebuilds the
    # guard with derived coverage instead of serving the stale one.
    budgeted.get("alpha")
    assert budgeted.record("alpha").bound
    builds_before = scrubber.guard_builds
    for _ in range(2):
        assert scrubber.tick() == []
    assert scrubber.guard_builds == builds_before + 2  # alpha gains, beta loses
    assert scrubber.status()["tenants"]["alpha"]["derived_guarded"] is True


def test_tenant_removal_prunes_scrubber_state(registry):
    scrubber = FleetScrubber(registry)
    for _ in range(2):
        scrubber.tick()
    assert sorted(scrubber.status()["tenants"]) == ["alpha", "beta"]
    registry.remove("beta")
    scrubber.tick()
    assert sorted(scrubber.status()["tenants"]) == ["alpha"]


def test_guard_include_derived_skips_canaries_and_cache_probes(small_dataset):
    clf = _fit(small_dataset, 3)
    clf.release_tables()
    guard = IntegrityGuard(clf, include_derived=False)
    assert guard.check_canaries() == []
    assert guard.verify_all() == []
    # Building and sweeping the guard must not have rebuilt the caches.
    assert clf.serving_table_bytes() == 0

"""QuantileSketch: determinism, instance-tracked error bound, edge cases."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streaming import QuantileSketch


class TestIngestion:
    def test_counts_and_exact_extremes(self, rng):
        values = rng.normal(size=5_000)
        sketch = QuantileSketch(capacity=64)
        for start in range(0, values.size, 640):
            sketch.update(values[start : start + 640])
        assert sketch.n == values.size
        assert sketch.min == values.min()
        assert sketch.max == values.max()

    def test_bounded_memory(self, rng):
        sketch = QuantileSketch(capacity=32)
        for _ in range(50):
            sketch.update(rng.normal(size=2_000))
        # 100k items summarised in O(k log(n/k)) retained samples.
        assert sketch.retained() <= 32 * (len(sketch.compactions) + 1)
        assert sketch.retained() < 1_000

    def test_any_shape_flattened(self):
        sketch = QuantileSketch()
        sketch.update(np.arange(12.0).reshape(3, 4))
        assert sketch.n == 12

    def test_empty_update_is_noop(self):
        sketch = QuantileSketch()
        sketch.update(np.empty(0))
        assert sketch.n == 0

    def test_rejects_non_finite(self):
        sketch = QuantileSketch()
        with pytest.raises(ValueError, match="non-finite"):
            sketch.update(np.array([1.0, np.nan]))

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            QuantileSketch(capacity=0)
        with pytest.raises(ValueError, match=">= 8"):
            QuantileSketch(capacity=4)


class TestQuantiles:
    def test_small_stream_is_exact(self):
        # Below capacity nothing compacts: quantiles come from raw data.
        values = np.arange(100.0)
        sketch = QuantileSketch(capacity=256)
        sketch.update(values)
        assert sketch.max_rank_error() == 0
        assert sketch.quantile(0.0) == 0.0
        assert sketch.quantile(1.0) == 99.0
        assert abs(sketch.quantile(0.5) - 50.0) <= 1.0

    def test_rank_error_within_instance_bound(self, rng):
        values = rng.lognormal(size=60_000)
        sketch = QuantileSketch(capacity=64)
        for start in range(0, values.size, 4_096):
            sketch.update(values[start : start + 4_096])
        ordered = np.sort(values)
        for fraction in (0.1, 0.25, 0.5, 0.75, 0.9):
            estimate = sketch.quantile(fraction)
            true_rank = np.searchsorted(ordered, estimate)
            # +1 interpolation slack: the estimate is a retained sample,
            # whose own weight straddles the target rank.
            assert abs(true_rank - fraction * values.size) <= (
                sketch.max_rank_error() + 1
            )

    def test_fractions_clamped_to_extremes(self, rng):
        sketch = QuantileSketch(capacity=16)
        sketch.update(rng.normal(size=1_000))
        assert sketch.quantile(0.0) == sketch.min
        assert sketch.quantile(1.0) == sketch.max

    def test_quantiles_vectorised_matches_scalar(self, rng):
        sketch = QuantileSketch(capacity=32)
        sketch.update(rng.normal(size=3_000))
        fractions = np.array([0.2, 0.5, 0.8])
        batch = sketch.quantiles(fractions)
        singles = [sketch.quantile(f) for f in fractions]
        assert np.array_equal(batch, np.asarray(singles))

    def test_empty_sketch_queries_raise(self):
        sketch = QuantileSketch()
        with pytest.raises(RuntimeError):
            sketch.quantile(0.5)

    def test_out_of_range_fraction_rejected(self, rng):
        sketch = QuantileSketch()
        sketch.update(rng.normal(size=10))
        with pytest.raises(ValueError):
            sketch.quantile(1.5)
        with pytest.raises(ValueError):
            sketch.quantile(-0.1)


class TestMerge:
    def test_merge_combines_counts_and_extremes(self, rng):
        left = QuantileSketch(capacity=32).update(rng.normal(size=3_000))
        right = QuantileSketch(capacity=32).update(rng.normal(loc=5.0, size=2_000))
        lo = min(left.min, right.min)
        hi = max(left.max, right.max)
        left.merge(right)
        assert left.n == 5_000
        assert left.min == lo
        assert left.max == hi

    def test_merge_bound_composes(self, rng):
        left = QuantileSketch(capacity=32).update(rng.normal(size=10_000))
        right = QuantileSketch(capacity=32).update(rng.normal(size=10_000))
        before = left.max_rank_error() + right.max_rank_error()
        left.merge(right)
        # Composition: both histories carried over, merge-time compactions
        # only add on top.
        assert left.max_rank_error() >= before

    def test_merge_keeps_memory_bounded(self, rng):
        owner = QuantileSketch(capacity=32)
        for _ in range(8):
            owner.merge(QuantileSketch(capacity=32).update(rng.normal(size=5_000)))
        assert owner.retained() <= 32 * (len(owner.compactions) + 1)

    def test_merge_does_not_mutate_other(self, rng):
        left = QuantileSketch(capacity=32).update(rng.normal(size=2_000))
        right = QuantileSketch(capacity=32).update(rng.normal(size=2_000))
        snapshot = right.describe()
        left.merge(right)
        assert right.describe() == snapshot

    def test_merge_empty_is_noop(self, rng):
        sketch = QuantileSketch(capacity=32).update(rng.normal(size=1_000))
        before = sketch.describe()
        sketch.merge(QuantileSketch(capacity=32))
        assert sketch.describe() == before

    def test_merge_validation(self, rng):
        sketch = QuantileSketch(capacity=32)
        with pytest.raises(ValueError, match="equal capacity"):
            sketch.merge(QuantileSketch(capacity=64))
        with pytest.raises(ValueError, match="itself"):
            sketch.merge(sketch)
        with pytest.raises(TypeError, match="QuantileSketch"):
            sketch.merge([1.0, 2.0])

    @given(
        seed=st.integers(0, 2**31 - 1),
        n_left=st.integers(1, 8_000),
        n_right=st.integers(1, 8_000),
        capacity=st.sampled_from([16, 32, 64]),
    )
    @settings(max_examples=25, deadline=None)
    def test_merged_rank_error_within_instance_bound(
        self, seed, n_left, n_right, capacity
    ):
        # The satellite property: a merged sketch honours its composed
        # instance-tracked bound for the *concatenated* stream, exactly
        # as a sequentially-fed sketch honours its own.
        rng = np.random.default_rng(seed)
        left_values = rng.lognormal(size=n_left)
        right_values = rng.normal(loc=2.0, size=n_right)
        merged = QuantileSketch(capacity=capacity).update(left_values)
        merged.merge(QuantileSketch(capacity=capacity).update(right_values))
        ordered = np.sort(np.concatenate([left_values, right_values]))
        for fraction in (0.1, 0.5, 0.9):
            estimate = merged.quantile(fraction)
            true_rank = np.searchsorted(ordered, estimate)
            assert abs(true_rank - fraction * ordered.size) <= (
                merged.max_rank_error() + 1
            )


class TestDeterminism:
    def test_same_stream_same_sketch(self, rng):
        values = rng.normal(size=20_000)
        a = QuantileSketch(capacity=32)
        b = QuantileSketch(capacity=32)
        for start in range(0, values.size, 1_000):
            a.update(values[start : start + 1_000])
            b.update(values[start : start + 1_000])
        fractions = np.linspace(0.05, 0.95, 19)
        assert np.array_equal(a.quantiles(fractions), b.quantiles(fractions))
        assert a.describe() == b.describe()

    def test_describe_fields(self, rng):
        sketch = QuantileSketch(capacity=16)
        sketch.update(rng.normal(size=5_000))
        info = sketch.describe()
        assert info["n"] == 5_000
        assert info["capacity"] == 16
        assert info["compactions"] > 0
        assert info["max_rank_error"] > 0
        assert 0.0 < info["rank_error_bound"] < 1.0
        assert info["retained"] == sketch.retained()
        assert info["levels"] >= 2

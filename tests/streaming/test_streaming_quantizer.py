"""StreamingQuantizer: convergence, freeze protocol, cache invalidation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hdc.item_memory import LevelItemMemory
from repro.lookhd.chunking import ChunkLayout
from repro.lookhd.encoder import LookupEncoder
from repro.lookhd.inference import FusedInferenceEngine
from repro.lookhd.lookup_table import ChunkLookupTable
from repro.lookhd.online import OnlineLookHD
from repro.quantization.equalized import EqualizedQuantizer
from repro.streaming import StreamingQuantizer
from repro.utils.rng import derive_rng


def _encoder(quantizer, n_features=12, dim=256, chunk_size=4, seed=11):
    item_memory = LevelItemMemory(
        quantizer.levels, dim, rng=derive_rng(seed, "lookhd-levels")
    )
    table = ChunkLookupTable(item_memory, chunk_size)
    layout = ChunkLayout(n_features, chunk_size)
    return LookupEncoder(quantizer, table, layout, seed=derive_rng(seed, "lookhd-positions"))


class TestQuantizerContract:
    def test_fit_transform_round_trip(self, rng):
        values = rng.normal(size=(200, 6))
        sq = StreamingQuantizer(levels=4)
        levels = sq.fit(values).transform(values)
        assert levels.min() >= 0 and levels.max() <= 3
        # Equalized placement: every level carries roughly 1/4 of the mass.
        occupancy = np.bincount(levels.ravel(), minlength=4) / values.size
        assert occupancy.min() > 0.15

    def test_fit_resets_partial_fit_history(self, rng):
        sq = StreamingQuantizer(levels=4)
        sq.partial_fit(rng.normal(loc=100.0, size=1_000))
        sq.fit(rng.normal(loc=0.0, size=(250, 4)))
        # Boundaries reflect only the fit() data — the loc=100 history is gone.
        assert sq.boundaries.max() < 50.0
        assert sq.sketch.n == 1_000

    def test_transform_before_fit_raises(self):
        sq = StreamingQuantizer(levels=4)
        with pytest.raises(RuntimeError):
            sq.transform(np.zeros((2, 2)))

    def test_empty_partial_fit_is_noop(self):
        sq = StreamingQuantizer(levels=4)
        sq.partial_fit(np.empty(0))
        assert sq.sketch.n == 0
        assert sq.version == 0

    def test_rejects_non_finite(self):
        sq = StreamingQuantizer(levels=4)
        with pytest.raises(ValueError, match="non-finite"):
            sq.partial_fit(np.array([1.0, np.inf]))


class TestConvergence:
    def test_boundaries_converge_to_full_pass(self, rng):
        values = rng.lognormal(size=50_000)
        oracle = EqualizedQuantizer(levels=8).fit(values)
        sq = StreamingQuantizer(levels=8, sketch_capacity=128)
        for start in range(0, values.size, 2_500):
            sq.partial_fit(values[start : start + 2_500])
        # Level-occupancy divergence bounded by the sketch guarantee:
        # each boundary carries <= eps*n rank error plus interpolation slack.
        streaming_levels = sq.transform(values)
        oracle_levels = oracle.transform(values)
        bound = 2.0 * sq.rank_error_bound() + 2.0 / values.size
        for level in range(8):
            streaming_mass = np.mean(streaming_levels == level)
            oracle_mass = np.mean(oracle_levels == level)
            assert abs(streaming_mass - oracle_mass) <= bound

    def test_boundaries_strictly_increasing(self, rng):
        sq = StreamingQuantizer(levels=6)
        sq.partial_fit(rng.normal(size=5_000))
        assert np.all(np.diff(sq.boundaries) > 0)

    def test_deterministic_across_runs(self, rng):
        values = rng.normal(size=10_000)
        a = StreamingQuantizer(levels=4, sketch_capacity=32)
        b = StreamingQuantizer(levels=4, sketch_capacity=32)
        for start in range(0, values.size, 500):
            a.partial_fit(values[start : start + 500])
            b.partial_fit(values[start : start + 500])
        assert np.array_equal(a.boundaries, b.boundaries)
        assert a.version == b.version


class TestParallelMerge:
    def test_merged_workers_converge_to_full_pass(self, rng):
        # The parallel-ingestion protocol: workers sketch disjoint shards,
        # the owner merges them, boundaries land near full-pass placement.
        values = rng.lognormal(size=40_000)
        owner = StreamingQuantizer(levels=4, sketch_capacity=128)
        for shard in np.array_split(values, 4):
            worker = StreamingQuantizer(levels=4, sketch_capacity=128)
            worker.partial_fit(shard)
            owner.merge(worker)
        assert owner.sketch.n == values.size
        reference = EqualizedQuantizer(levels=4).fit(values)
        ordered = np.sort(values)
        slack = owner.sketch.max_rank_error() + 1
        for ours, theirs in zip(owner.boundaries, reference.boundaries):
            rank_gap = abs(
                np.searchsorted(ordered, ours) - np.searchsorted(ordered, theirs)
            )
            assert rank_gap <= 2 * slack

    def test_merge_accepts_raw_sketch_and_bumps_version(self, rng):
        from repro.streaming import QuantileSketch

        owner = StreamingQuantizer(levels=4)
        owner.partial_fit(rng.normal(size=500))
        version = owner.version
        shifted = QuantileSketch(owner.sketch.capacity).update(
            rng.normal(loc=50.0, size=2_000)
        )
        owner.merge(shifted)
        assert owner.version > version
        assert owner.boundaries.max() > 10.0

    def test_frozen_merge_ingests_without_republishing(self, rng):
        owner = StreamingQuantizer(levels=4)
        owner.partial_fit(rng.normal(size=1_000))
        owner.freeze()
        before = owner.boundaries
        worker = StreamingQuantizer(levels=4)
        worker.partial_fit(rng.normal(loc=30.0, size=2_000))
        owner.merge(worker)
        assert np.array_equal(owner.boundaries, before)
        assert owner.sketch.n == 3_000
        owner.unfreeze()
        assert not np.array_equal(owner.boundaries, before)

    def test_merge_rejects_level_mismatch(self, rng):
        owner = StreamingQuantizer(levels=4)
        other = StreamingQuantizer(levels=8)
        other.partial_fit(rng.normal(size=100))
        with pytest.raises(ValueError, match="level"):
            owner.merge(other)


class TestFreezeProtocol:
    def test_version_bumps_only_on_boundary_moves(self, rng):
        sq = StreamingQuantizer(levels=4)
        assert sq.version == 0
        sq.partial_fit(rng.normal(size=1_000))
        first = sq.version
        assert first >= 1
        # Re-feeding a tiny batch that cannot move the quantiles may or may
        # not bump; feeding a shifted distribution must.
        sq.partial_fit(rng.normal(loc=10.0, size=5_000))
        assert sq.version > first

    def test_freeze_pins_boundaries_while_sketch_ingests(self, rng):
        sq = StreamingQuantizer(levels=4)
        sq.partial_fit(rng.normal(size=2_000))
        pinned = sq.boundaries
        version = sq.version
        sq.freeze()
        assert sq.frozen
        sq.partial_fit(rng.normal(loc=25.0, size=5_000))
        assert np.array_equal(sq.boundaries, pinned)
        assert sq.version == version
        assert sq.sketch.n == 7_000  # ingestion never stopped

    def test_unfreeze_adopts_accumulated_state(self, rng):
        sq = StreamingQuantizer(levels=4)
        sq.partial_fit(rng.normal(size=2_000))
        version = sq.version
        sq.freeze()
        sq.partial_fit(rng.normal(loc=25.0, size=5_000))
        sq.unfreeze()
        assert not sq.frozen
        assert sq.version > version
        assert sq.boundaries.max() > 10.0

    def test_unfreeze_without_refresh_keeps_boundaries(self, rng):
        sq = StreamingQuantizer(levels=4)
        sq.partial_fit(rng.normal(size=2_000))
        pinned = sq.boundaries
        sq.freeze()
        sq.partial_fit(rng.normal(loc=25.0, size=5_000))
        sq.unfreeze(refresh=False)
        assert np.array_equal(sq.boundaries, pinned)


class TestCacheInvalidation:
    """Boundary moves must flow through every derived cache."""

    def test_encoder_version_tracks_quantizer(self, rng):
        sq = StreamingQuantizer(levels=4)
        sq.partial_fit(rng.normal(size=(100, 12)))
        encoder = _encoder(sq)
        before = encoder.encoding_version
        sq.partial_fit(rng.normal(loc=30.0, size=(500, 12)))
        assert encoder.encoding_version > before

    def test_prebound_table_dropped_on_boundary_move(self, rng):
        sq = StreamingQuantizer(levels=4)
        sq.partial_fit(rng.normal(size=(100, 12)))
        encoder = _encoder(sq)
        built = encoder.prebound_table
        assert built is not None
        assert encoder.prebound_table is built  # cached while boundaries hold
        sq.partial_fit(rng.normal(loc=30.0, size=(500, 12)))
        # The pre-bound cache baked the old value->level map: the next
        # access must hand back a freshly built table, not the stale one.
        rebuilt = encoder.prebound_table
        assert rebuilt is not None
        assert rebuilt is not built

    def test_fused_engine_rebuilds_and_predictions_follow(self, rng):
        sq = StreamingQuantizer(levels=4)
        train = rng.normal(size=(300, 12))
        labels = (train.sum(axis=1) > 0).astype(np.int64)
        sq.partial_fit(train)
        encoder = _encoder(sq)
        online = OnlineLookHD(encoder, 2)
        online.partial_fit(train, labels)
        engine = FusedInferenceEngine(encoder, online.class_model())
        queries = rng.normal(size=(20, 12))
        engine.predict(queries)
        built_before = engine._built_encoding_version
        # Shift the distribution hard: boundaries move, table is stale.
        sq.partial_fit(rng.normal(loc=50.0, size=(2_000, 12)))
        engine.predict(queries)
        assert engine._built_encoding_version != built_before
        # After the rebuild, the fused path agrees with the direct
        # encode-then-score path under the *new* boundaries.
        direct = np.atleast_1d(online.class_model().predict(encoder.encode(queries)))
        fused = np.atleast_1d(engine.predict(queries))
        np.testing.assert_array_equal(fused, direct)

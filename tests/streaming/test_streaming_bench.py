"""Streaming bench + schema: the smoke profile passes, forgeries fail."""

from __future__ import annotations

import copy
import json

import pytest

from repro.streaming import (
    STREAM_PROFILES,
    StreamBenchConfig,
    run_stream_bench,
    validate_streaming_payload,
    write_streaming_file,
)
from repro.streaming.bench import override_config
from repro.streaming.schema import RECOVERY_TOLERANCE


@pytest.fixture(scope="module")
def smoke_payload():
    return run_stream_bench(STREAM_PROFILES["smoke"])


class TestConfig:
    def test_profiles_are_valid(self):
        for profile in STREAM_PROFILES.values():
            assert isinstance(profile, StreamBenchConfig)
            assert 0 < profile.tail_batches <= profile.n_batches

    def test_validation(self):
        with pytest.raises(ValueError, match="decay"):
            StreamBenchConfig(decay=0.0)
        with pytest.raises(ValueError, match="decay"):
            StreamBenchConfig(decay=1.5)
        with pytest.raises(ValueError):
            StreamBenchConfig(n_batches=0)
        with pytest.raises(ValueError):
            StreamBenchConfig(drift_magnitude=-1.0)

    def test_override_config(self):
        base = STREAM_PROFILES["smoke"]
        same = override_config(base, n_batches=None, decay=None)
        assert same == base
        changed = override_config(base, n_batches=6, decay=0.9)
        assert changed.n_batches == 6
        assert changed.decay == 0.9
        assert changed.dim == base.dim


class TestSmokeRun:
    def test_payload_passes_schema(self, smoke_payload):
        assert validate_streaming_payload(smoke_payload) is smoke_payload

    def test_all_gates_hold(self, smoke_payload):
        checks = smoke_payload["checks"]
        assert checks["abrupt_recovery_within_tolerance"]
        assert checks["divergence_within_bound"]
        assert checks["serving_zero_dropped"]
        assert checks["serving_live_bit_identity"]
        abrupt = smoke_payload["modes"]["abrupt"]
        assert abrupt["recovery_gap"] <= RECOVERY_TOLERANCE
        assert abrupt["boundary_divergence"] <= abrupt["divergence_bound"]

    def test_serving_section_counts(self, smoke_payload):
        serving = smoke_payload["serving"]
        assert serving["updates"] >= 1
        assert serving["predicts"] >= 1
        assert serving["dropped"] == 0
        assert serving["flush_reasons"]["update"] == serving["updates"]
        assert serving["live_matches_offline"] is True

    def test_payload_is_json_serialisable(self, smoke_payload):
        round_tripped = json.loads(json.dumps(smoke_payload))
        validate_streaming_payload(round_tripped)

    def test_write_streaming_file(self, tmp_path):
        # Tiny custom config: the write path itself, not another full run.
        config = override_config(
            STREAM_PROFILES["smoke"], n_batches=8, batch_size=60, dim=256
        )
        path = write_streaming_file(config=config, out_dir=tmp_path)
        assert path.name == "BENCH_streaming.json"
        payload = json.loads(path.read_text())
        validate_streaming_payload(payload)

    def test_unknown_profile_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown streaming profile"):
            write_streaming_file("nope", out_dir=tmp_path)


class TestSchemaRejectsForgeries:
    """The schema is the acceptance gate: doctored payloads must not pass."""

    def _mutated(self, payload, mutate):
        doctored = copy.deepcopy(payload)
        mutate(doctored)
        return doctored

    def test_rejects_failed_recovery(self, smoke_payload):
        def mutate(p):
            abrupt = p["modes"]["abrupt"]
            abrupt["streaming_tail_accuracy"] = max(
                0.0, abrupt["oracle_tail_accuracy"] - 0.5
            )
            abrupt["recovery_gap"] = (
                abrupt["oracle_tail_accuracy"] - abrupt["streaming_tail_accuracy"]
            )

        with pytest.raises(ValueError, match="failed to recover"):
            validate_streaming_payload(self._mutated(smoke_payload, mutate))

    def test_rejects_inconsistent_recovery_gap(self, smoke_payload):
        def mutate(p):
            p["modes"]["abrupt"]["recovery_gap"] = 0.0
            p["modes"]["abrupt"]["streaming_tail_accuracy"] = 0.1

        with pytest.raises(ValueError, match="recovery_gap must equal"):
            validate_streaming_payload(self._mutated(smoke_payload, mutate))

    def test_rejects_divergence_beyond_bound(self, smoke_payload):
        def mutate(p):
            mode = p["modes"]["incremental"]
            mode["boundary_divergence"] = mode["divergence_bound"] * 2

        with pytest.raises(ValueError, match="diverged beyond"):
            validate_streaming_payload(self._mutated(smoke_payload, mutate))

    def test_rejects_dropped_updates(self, smoke_payload):
        def mutate(p):
            p["serving"]["dropped"] = 1

        with pytest.raises(ValueError, match="dropped"):
            validate_streaming_payload(self._mutated(smoke_payload, mutate))

    def test_rejects_live_divergence(self, smoke_payload):
        def mutate(p):
            p["serving"]["live_matches_offline"] = False

        with pytest.raises(ValueError, match="diverged from the offline"):
            validate_streaming_payload(self._mutated(smoke_payload, mutate))

    def test_rejects_unlearned_quantizer(self, smoke_payload):
        def mutate(p):
            p["modes"]["abrupt"]["quantizer_version"] = 0

        with pytest.raises(ValueError, match="quantizer_version"):
            validate_streaming_payload(self._mutated(smoke_payload, mutate))

    def test_rejects_missing_telemetry(self, smoke_payload):
        doctored = copy.deepcopy(smoke_payload)
        del doctored["telemetry"]
        with pytest.raises(ValueError, match="telemetry"):
            validate_streaming_payload(doctored)

    def test_rejects_wrong_schema_version(self, smoke_payload):
        def mutate(p):
            p["schema_version"] = 99

        with pytest.raises(ValueError, match="schema_version"):
            validate_streaming_payload(self._mutated(smoke_payload, mutate))

import numpy as np
import pytest

from repro.utils.validation import (
    check_1d,
    check_2d,
    check_in_range,
    check_positive_int,
    check_power_of_two,
)


class TestCheckPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(5, "x") == 5

    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int32(7), "x") == 7

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(-3, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(2.0, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_error_names_argument(self):
        with pytest.raises(ValueError, match="widgets"):
            check_positive_int(-1, "widgets")


class TestCheckInRange:
    def test_inside(self):
        assert check_in_range(0.5, "x", 0, 1) == 0.5

    def test_boundaries_inclusive(self):
        assert check_in_range(0.0, "x", 0, 1) == 0.0
        assert check_in_range(1.0, "x", 0, 1) == 1.0

    def test_outside(self):
        with pytest.raises(ValueError):
            check_in_range(1.5, "x", 0, 1)


class TestCheckPowerOfTwo:
    def test_accepts_powers(self):
        for value in (1, 2, 4, 1024):
            assert check_power_of_two(value, "x") == value

    def test_rejects_non_powers(self):
        for value in (3, 6, 1000):
            with pytest.raises(ValueError):
                check_power_of_two(value, "x")


class TestShapeChecks:
    def test_check_1d_passes_vector(self):
        out = check_1d([1, 2, 3], "v")
        assert out.shape == (3,)

    def test_check_1d_rejects_matrix(self):
        with pytest.raises(ValueError):
            check_1d(np.zeros((2, 2)), "v")

    def test_check_2d_promotes_vector(self):
        out = check_2d([1, 2, 3], "m")
        assert out.shape == (1, 3)

    def test_check_2d_passes_matrix(self):
        out = check_2d(np.zeros((4, 5)), "m")
        assert out.shape == (4, 5)

    def test_check_2d_rejects_3d(self):
        with pytest.raises(ValueError):
            check_2d(np.zeros((2, 2, 2)), "m")

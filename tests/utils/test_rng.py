import numpy as np
import pytest

from repro.utils.rng import derive_rng, ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, size=10)
        b = ensure_rng(42).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 10**9)
        b = ensure_rng(2).integers(0, 10**9)
        assert a != b

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")

    def test_numpy_integer_accepted(self):
        assert isinstance(ensure_rng(np.int64(5)), np.random.Generator)


class TestDeriveRng:
    def test_same_seed_same_tag_matches(self):
        a = derive_rng(10, "levels").integers(0, 10**9)
        b = derive_rng(10, "levels").integers(0, 10**9)
        assert a == b

    def test_different_tags_are_independent(self):
        a = derive_rng(10, "levels").integers(0, 10**9)
        b = derive_rng(10, "positions").integers(0, 10**9)
        assert a != b

    def test_derive_from_generator_advances_parent(self):
        parent = np.random.default_rng(0)
        before = parent.bit_generator.state["state"]["state"]
        derive_rng(parent, "x")
        after = parent.bit_generator.state["state"]["state"]
        assert before != after


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_are_independent(self):
        children = spawn_rngs(0, 2)
        assert children[0].integers(0, 10**9) != children[1].integers(0, 10**9)

    def test_zero_children(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_deterministic_given_seed(self):
        a = spawn_rngs(3, 2)[1].integers(0, 10**9)
        b = spawn_rngs(3, 2)[1].integers(0, 10**9)
        assert a == b

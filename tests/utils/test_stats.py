import numpy as np
import pytest

from repro.utils.stats import Summary, geometric_mean, histogram_fractions


class TestSummary:
    def test_basic_fields(self):
        s = Summary.of(np.array([1.0, 2.0, 3.0]))
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.count == 3

    def test_flattens_input(self):
        s = Summary.of(np.ones((2, 3)))
        assert s.count == 6

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Summary.of(np.array([]))


class TestGeometricMean:
    def test_matches_known_value(self):
        assert geometric_mean(np.array([1.0, 4.0])) == pytest.approx(2.0)

    def test_identity_on_constant(self):
        assert geometric_mean(np.array([3.0, 3.0, 3.0])) == pytest.approx(3.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean(np.array([1.0, 0.0]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean(np.array([]))

    def test_below_arithmetic_mean(self):
        values = np.array([1.0, 10.0])
        assert geometric_mean(values) < values.mean()


class TestHistogramFractions:
    def test_fractions_sum_to_one(self):
        values = np.random.default_rng(0).normal(size=500)
        bins = np.linspace(-4, 4, 9)
        fractions = histogram_fractions(values, bins)
        assert fractions.sum() == pytest.approx(1.0)

    def test_empty_input_gives_zeros(self):
        fractions = histogram_fractions(np.array([]), np.linspace(0, 1, 5))
        assert np.all(fractions == 0)

import pytest

from repro.hw.opcounts import (
    OpCounts,
    WorkloadShape,
    baseline_encoding_ops,
    baseline_full_cosine_search_ops,
    baseline_inference_ops,
    baseline_retraining_ops,
    baseline_search_ops,
    baseline_training_ops,
    encoding_fraction,
    lookhd_encoding_ops,
    lookhd_inference_ops,
    lookhd_search_ops,
    lookhd_training_ops,
    quantization_ops,
)

SHAPE = WorkloadShape(n_features=100, n_classes=10, dim=1000, levels=4, chunk_size=5)


class TestOpCounts:
    def test_add_sums_counts(self):
        total = OpCounts(adds=3, reads=2) + OpCounts(adds=4, writes=5)
        assert total.adds == 7
        assert total.reads == 2
        assert total.writes == 5

    def test_scaled(self):
        out = OpCounts(adds=3, mults=2).scaled(10)
        assert out.adds == 30
        assert out.mults == 20

    def test_zero_op_component_does_not_poison_widths(self):
        narrow = OpCounts(adds=10, add_bits=8)
        reads_only = OpCounts(onchip_reads=5, add_bits=64)
        assert (narrow + reads_only).add_bits == 8

    def test_mem_bits_traffic_weighted(self):
        light = OpCounts(reads=90, mem_bits=1)
        heavy = OpCounts(reads=10, mem_bits=32)
        merged = light + heavy
        assert 1 <= merged.mem_bits <= 8

    def test_totals(self):
        ops = OpCounts(adds=1, dsp_adds=2, mults=3, compares=4, reads=5, onchip_reads=6)
        assert ops.total_arithmetic == 10
        assert ops.total_memory == 11


class TestWorkloadShape:
    def test_chunk_count(self):
        assert SHAPE.n_chunks == 20
        assert WorkloadShape(22, 2, chunk_size=5).n_chunks == 5

    def test_table_rows(self):
        assert SHAPE.table_rows == 4**5

    def test_groups_default_exact_mode(self):
        assert WorkloadShape(10, 26).n_groups == 3
        assert WorkloadShape(10, 6).n_groups == 1

    def test_groups_single_hypervector(self):
        assert WorkloadShape(10, 26, group_size=26).n_groups == 1


class TestPhaseCounts:
    def test_baseline_encoding_scales_with_n_and_d(self):
        small = baseline_encoding_ops(WorkloadShape(50, 2, dim=500))
        large = baseline_encoding_ops(WorkloadShape(100, 2, dim=1000))
        assert large.adds == pytest.approx(4 * small.adds, rel=0.1)

    def test_lookhd_encoding_much_cheaper(self):
        base = baseline_encoding_ops(SHAPE)
        look = lookhd_encoding_ops(SHAPE)
        # m = n/r chunks -> roughly r-fold fewer D-wide accumulations.
        assert look.adds < base.adds

    def test_baseline_search_mults_scale_with_k(self):
        few = baseline_search_ops(WorkloadShape(10, 2, dim=1000))
        many = baseline_search_ops(WorkloadShape(10, 20, dim=1000))
        assert many.mults == 10 * few.mults

    def test_compressed_search_mults_scale_with_groups_not_k(self):
        few = lookhd_search_ops(WorkloadShape(10, 2, dim=1000, group_size=None))
        many = lookhd_search_ops(WorkloadShape(10, 12, dim=1000, group_size=None))
        assert many.mults == few.mults  # one group each

    def test_lookhd_search_fewer_mults_than_baseline(self):
        base = baseline_search_ops(SHAPE)
        look = lookhd_search_ops(SHAPE)
        assert look.mults < base.mults

    def test_training_scales_with_samples(self):
        one = baseline_training_ops(SHAPE, 100)
        two = baseline_training_ops(SHAPE, 200)
        assert two.adds == pytest.approx(2 * one.adds)

    def test_lookhd_training_far_fewer_ops(self):
        base = baseline_training_ops(SHAPE, 5000)
        look = lookhd_training_ops(SHAPE, 5000)
        assert look.total_arithmetic < 0.5 * base.total_arithmetic

    def test_lookhd_training_nnz_saturates(self):
        # Doubling the training set must not double materialisation once
        # counters saturate (dedup is the point of counting).
        small = lookhd_training_ops(SHAPE, 50_000)
        large = lookhd_training_ops(SHAPE, 100_000)
        assert large.mults < 1.5 * small.mults

    def test_retraining_update_costs_included(self):
        none = baseline_retraining_ops(SHAPE, 1000, 0)
        some = baseline_retraining_ops(SHAPE, 1000, 100)
        assert some.adds > none.adds

    def test_encoding_fraction_dominates_baseline_training(self):
        total = baseline_training_ops(SHAPE, 100)
        encoding = baseline_encoding_ops(SHAPE).scaled(100)
        assert encoding_fraction(total, encoding) > 0.8

    def test_full_cosine_more_expensive_than_simplified(self):
        assert (
            baseline_full_cosine_search_ops(SHAPE).total_arithmetic
            > baseline_search_ops(SHAPE).total_arithmetic
        )

    def test_inference_is_encode_plus_search(self):
        inference = baseline_inference_ops(SHAPE)
        parts = baseline_encoding_ops(SHAPE) + baseline_search_ops(SHAPE)
        assert inference.total_arithmetic == parts.total_arithmetic

    def test_lookhd_inference_composition(self):
        inference = lookhd_inference_ops(SHAPE)
        parts = lookhd_encoding_ops(SHAPE) + lookhd_search_ops(SHAPE)
        assert inference.total_arithmetic == parts.total_arithmetic

    def test_quantization_scales_with_q(self):
        q2 = quantization_ops(WorkloadShape(100, 2, levels=2))
        q8 = quantization_ops(WorkloadShape(100, 2, levels=8))
        assert q8.adds == 4 * q2.adds

import pytest

from repro.hw.arm import ArmCortexA53
from repro.hw.gpu import Gtx1080
from repro.hw.opcounts import OpCounts, WorkloadShape, baseline_training_ops


class TestArmCortexA53:
    def test_narrow_adds_faster_than_wide(self):
        arm = ArmCortexA53()
        narrow = arm.run(OpCounts(adds=1e7, add_bits=8))
        wide = arm.run(OpCounts(adds=1e7, add_bits=32))
        assert narrow.seconds < wide.seconds

    def test_random_accesses_expensive(self):
        arm = ArmCortexA53()
        streaming = arm.run(OpCounts(reads=1e6, mem_bits=16))
        random = arm.run(OpCounts(random_accesses=1e6))
        assert random.seconds > 5 * streaming.seconds

    def test_scalar_float_path_slow(self):
        arm = ArmCortexA53()
        vectorised = arm.run(OpCounts(mults=1e6, adds=1e6, mult_bits=32))
        scalar = arm.run(OpCounts(mults=1e6, adds=1e6, mult_bits=64))
        assert scalar.seconds > 2 * vectorised.seconds

    def test_power_in_sane_envelope(self):
        arm = ArmCortexA53()
        result = arm.run(OpCounts(adds=1e9, reads=1e8))
        assert 0.1 < result.watts < 3.0  # A53-cluster territory


class TestGtx1080:
    def test_launch_overhead_dominates_tiny_kernels(self):
        gpu = Gtx1080()
        tiny = gpu.run(OpCounts(adds=1000))
        assert tiny.seconds >= 25e-6

    def test_high_power(self):
        gpu = Gtx1080()
        result = gpu.run(OpCounts(mults=1e11, adds=1e11))
        assert result.watts > 100

    def test_throughput_beats_arm_on_bulk_compute(self):
        gpu, arm = Gtx1080(), ArmCortexA53()
        ops = baseline_training_ops(
            WorkloadShape(600, 20, dim=2000, levels=16), 10_000
        )
        assert gpu.run(ops).seconds < arm.run(ops).seconds

    def test_arm_wins_on_per_query_inference_energy(self):
        # Table III: per-query the GPU's launch overhead and board power
        # make it the least energy-efficient platform.
        from repro.hw.scenarios import baseline_inference

        gpu, arm = Gtx1080(), ArmCortexA53()
        shape = WorkloadShape(617, 26, dim=2000, levels=16)
        assert baseline_inference(arm, shape).joules < baseline_inference(gpu, shape).joules

import pytest

from repro.hw.mlp_accel import MlpAcceleratorModel, MlpShape


class TestMlpShape:
    def test_macs_per_inference(self):
        shape = MlpShape(n_inputs=10, hidden_units=20, n_outputs=5)
        assert shape.macs_per_inference == 20 * 15

    def test_parameter_count(self):
        shape = MlpShape(10, 20, 5)
        assert shape.parameters == 10 * 20 + 20 + 20 * 5 + 5

    def test_rejects_zero_layer(self):
        with pytest.raises(ValueError):
            MlpShape(0, 10, 2)


class TestMlpAcceleratorModel:
    def test_training_scales_with_epochs(self):
        accel = MlpAcceleratorModel()
        shape = MlpShape(100, 64, 10)
        ten = accel.training(shape, 1000, 10)
        twenty = accel.training(shape, 1000, 20)
        assert twenty.seconds == pytest.approx(2 * ten.seconds, rel=0.05)

    def test_training_costlier_than_inference(self):
        accel = MlpAcceleratorModel()
        shape = MlpShape(100, 64, 10)
        assert accel.training(shape, 1, 1).seconds > accel.inference(shape).seconds

    def test_bigger_network_slower(self):
        accel = MlpAcceleratorModel()
        small = accel.inference(MlpShape(100, 32, 10))
        large = accel.inference(MlpShape(100, 512, 10))
        assert large.seconds > small.seconds

    def test_rejects_bad_training_args(self):
        accel = MlpAcceleratorModel()
        with pytest.raises(ValueError):
            accel.training(MlpShape(10, 10, 2), 0, 5)

import pytest

from repro.hw.opcounts import OpCounts
from repro.hw.platforms import (
    PhaseResult,
    ResourceClass,
    RooflinePlatform,
    overlap,
)


class TwoLanePlatform(RooflinePlatform):
    """Minimal concrete platform: 100 adds/s, 10 mults/s."""

    name = "test-platform"
    static_watts = 1.0
    phase_overhead_seconds = 0.0

    @property
    def resources(self):
        return {
            "add": ResourceClass("add", 100.0, 2.0),
            "mul": ResourceClass("mul", 10.0, 4.0),
        }

    def demand(self, ops):
        return {"add": ops.adds, "mul": ops.mults}


class TestPhaseResult:
    def test_addition(self):
        total = PhaseResult(1.0, 2.0) + PhaseResult(3.0, 4.0)
        assert total.seconds == 4.0
        assert total.joules == 6.0

    def test_watts(self):
        assert PhaseResult(2.0, 10.0).watts == 5.0

    def test_edp(self):
        assert PhaseResult(2.0, 3.0).edp == 6.0

    def test_overlap_takes_max_time_sum_energy(self):
        merged = overlap(PhaseResult(1.0, 2.0), PhaseResult(3.0, 1.0))
        assert merged.seconds == 3.0
        assert merged.joules == 3.0


class TestRooflinePlatform:
    def test_bottleneck_resource_sets_time(self):
        platform = TwoLanePlatform()
        # 100 adds (1 s at 100/s) vs 50 mults (5 s at 10/s) -> 5 s.
        result = platform.run(OpCounts(adds=100, mults=50))
        assert result.seconds == pytest.approx(5.0)

    def test_energy_includes_static_and_dynamic(self):
        platform = TwoLanePlatform()
        result = platform.run(OpCounts(mults=10))  # 1 s on mul alone
        # static 1 W + mul at full utilisation 4 W = 5 J over 1 s.
        assert result.joules == pytest.approx(5.0)

    def test_partial_utilisation_draws_less(self):
        platform = TwoLanePlatform()
        # mults dominate (5 s); adds busy only 1 s -> add power at 20%.
        result = platform.run(OpCounts(adds=100, mults=50))
        expected = 5.0 * (1.0 + 4.0 + 2.0 * (1.0 / 5.0))
        assert result.joules == pytest.approx(expected)

    def test_empty_phase(self):
        result = TwoLanePlatform().run(OpCounts())
        assert result.seconds == 0.0
        assert result.joules == 0.0

    def test_run_phases_sums(self):
        platform = TwoLanePlatform()
        single = platform.run(OpCounts(adds=100))
        double = platform.run_phases([OpCounts(adds=100), OpCounts(adds=100)])
        assert double.seconds == pytest.approx(2 * single.seconds)

    def test_bad_resource_rejected(self):
        with pytest.raises(ValueError):
            ResourceClass("x", 0.0, 1.0)
        with pytest.raises(ValueError):
            ResourceClass("x", 1.0, -1.0)

import pytest

from repro.hw.arm import ArmCortexA53
from repro.hw.fpga import KintexFpga
from repro.hw.opcounts import WorkloadShape
from repro.hw.scenarios import (
    baseline_inference,
    baseline_retraining,
    baseline_training,
    lookhd_inference,
    lookhd_retraining,
    lookhd_training,
    model_size_bytes,
)

SPEECH = WorkloadShape(617, 26, dim=2000, levels=4, chunk_size=5)
SPEECH_BASE = WorkloadShape(617, 26, dim=2000, levels=16, chunk_size=5)


@pytest.fixture(scope="module")
def fpga():
    return KintexFpga()


@pytest.fixture(scope="module")
def arm():
    return ArmCortexA53()


class TestHeadlineDirections:
    """The paper's qualitative results must hold in the model."""

    def test_lookhd_training_wins_on_fpga(self, fpga):
        # SPEECH (k=26) is LookHD's worst training case (per-class
        # materialisation); it must still win clearly.
        base = baseline_training(fpga, SPEECH_BASE, 6000)
        look = lookhd_training(fpga, SPEECH, 6000)
        assert base.seconds / look.seconds > 2
        assert base.joules / look.joules > 2

    def test_lookhd_training_wins_on_cpu(self, arm):
        base = baseline_training(arm, SPEECH_BASE, 6000)
        look = lookhd_training(arm, SPEECH, 6000)
        assert base.seconds / look.seconds > 2

    def test_q2_trains_faster_than_q4(self, fpga):
        q2 = WorkloadShape(617, 26, dim=2000, levels=2, chunk_size=5)
        q4 = WorkloadShape(617, 26, dim=2000, levels=4, chunk_size=5)
        assert (
            lookhd_training(fpga, q2, 6000).seconds
            < lookhd_training(fpga, q4, 6000).seconds
        )

    def test_lookhd_inference_wins(self, fpga):
        base = baseline_inference(fpga, SPEECH_BASE)
        look = lookhd_inference(fpga, SPEECH)
        assert base.seconds / look.seconds > 1.2

    def test_lookhd_retraining_wins(self, fpga):
        base = baseline_retraining(fpga, SPEECH_BASE, 6000)
        look = lookhd_retraining(fpga, SPEECH, 6000)
        assert base.seconds / look.seconds > 1.5

    def test_fpga_beats_cpu_on_baseline_training(self, fpga, arm):
        cpu = baseline_training(arm, SPEECH_BASE, 6000)
        accel = baseline_training(fpga, SPEECH_BASE, 6000)
        assert cpu.seconds / accel.seconds > 50


class TestPipelineOverlap:
    def test_fpga_inference_overlaps(self, fpga):
        # Pipelined latency <= sum of stage latencies.
        from repro.hw.opcounts import lookhd_encoding_ops, lookhd_search_ops

        encode = fpga.run(lookhd_encoding_ops(SPEECH))
        search = fpga.run(lookhd_search_ops(SPEECH))
        combined = lookhd_inference(fpga, SPEECH)
        assert combined.seconds == pytest.approx(
            max(encode.seconds, search.seconds)
        )
        assert combined.joules == pytest.approx(encode.joules + search.joules)

    def test_cpu_inference_is_sequential(self, arm):
        from repro.hw.opcounts import lookhd_encoding_ops, lookhd_search_ops

        encode = arm.run(lookhd_encoding_ops(SPEECH))
        search = arm.run(lookhd_search_ops(SPEECH))
        combined = lookhd_inference(arm, SPEECH)
        assert combined.seconds == pytest.approx(encode.seconds + search.seconds)


class TestModelSize:
    def test_compressed_model_smaller(self):
        full = model_size_bytes(SPEECH, compressed=False)
        compressed = model_size_bytes(SPEECH, compressed=True)
        assert full / compressed == pytest.approx(26 / 3)

    def test_single_hypervector_mode(self):
        shape = WorkloadShape(617, 26, dim=2000, group_size=26)
        assert model_size_bytes(shape, compressed=True) == 2000 * 4

    def test_retraining_scales_with_updates(self, fpga):
        few = baseline_retraining(fpga, SPEECH_BASE, 6000, update_fraction=0.05)
        many = baseline_retraining(fpga, SPEECH_BASE, 6000, update_fraction=0.5)
        assert many.seconds >= few.seconds

import pytest

from repro.hw.fpga import FpgaResources, KintexFpga
from repro.hw.opcounts import (
    OpCounts,
    WorkloadShape,
    baseline_search_ops,
    lookhd_encoding_ops,
    lookhd_search_ops,
)

SPEECH = WorkloadShape(617, 26, dim=2000, levels=4, chunk_size=5)
FACE = WorkloadShape(608, 2, dim=2000, levels=2, chunk_size=5)


class TestDeviceBudget:
    def test_kc705_defaults(self):
        device = FpgaResources()
        assert device.luts == 203_800
        assert device.dsp_slices == 840
        assert device.bram_bytes == 445 * 36 * 1024 // 8

    def test_lane_counts_scale_with_width(self):
        fpga = KintexFpga()
        assert fpga.add_lanes(8) == pytest.approx(2 * fpga.add_lanes(16), rel=0.01)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            KintexFpga(datapath_lut_fraction=0.0)


class TestBramFit:
    def test_small_table_fits(self):
        fpga = KintexFpga()
        assert fpga.table_fits_in_bram(WorkloadShape(100, 2, dim=2000, levels=2, chunk_size=5))

    def test_huge_table_does_not_fit(self):
        fpga = KintexFpga()
        big = WorkloadShape(100, 2, dim=2000, levels=16, chunk_size=5)  # 16^5 rows
        assert not fpga.table_fits_in_bram(big)


class TestSearchWindow:
    def test_more_classes_narrower_window(self):
        fpga = KintexFpga()
        assert fpga.search_window(SPEECH) < fpga.search_window(FACE)

    def test_window_positive(self):
        fpga = KintexFpga()
        assert fpga.search_window(WorkloadShape(10, 48, group_size=48)) >= 1


class TestDemandRouting:
    def test_wide_mults_go_to_dsp(self):
        fpga = KintexFpga()
        demand = fpga.demand(OpCounts(mults=100, mult_bits=32))
        assert demand["dsp"] == 100

    def test_narrow_mults_go_to_fabric(self):
        fpga = KintexFpga()
        demand = fpga.demand(OpCounts(mults=100, mult_bits=4))
        assert demand["dsp"] == 0
        assert demand["fabric"] > 0

    def test_dsp_adds_routed_to_dsp(self):
        fpga = KintexFpga()
        demand = fpga.demand(OpCounts(dsp_adds=50))
        assert demand["dsp"] == 50

    def test_narrow_memory_cheaper(self):
        fpga = KintexFpga()
        wide = fpga.demand(OpCounts(onchip_reads=100, onchip_bits=32))["bram"]
        narrow = fpga.demand(OpCounts(onchip_reads=100, onchip_bits=1))["bram"]
        assert narrow < wide / 8


class TestUtilizationReport:
    def test_fractions_normalised(self):
        fpga = KintexFpga()
        report = fpga.utilization_report(lookhd_encoding_ops(SPEECH))
        assert max(report.values()) == pytest.approx(1.0)
        assert all(0 <= v <= 1 for v in report.values())

    def test_speech_inference_dsp_limited(self):
        # The Fig. 16 finding: many classes saturate the DSPs.
        fpga = KintexFpga()
        report = fpga.utilization_report(
            [lookhd_encoding_ops(SPEECH), lookhd_search_ops(SPEECH)]
        )
        assert report["dsp"] == pytest.approx(1.0)

    def test_face_inference_fabric_limited(self):
        fpga = KintexFpga()
        report = fpga.utilization_report(
            [lookhd_encoding_ops(FACE), lookhd_search_ops(FACE)]
        )
        assert report["fabric"] == pytest.approx(1.0)

    def test_baseline_search_needs_dsps(self):
        fpga = KintexFpga()
        report = fpga.utilization_report(baseline_search_ops(SPEECH))
        assert report["dsp"] == pytest.approx(1.0)

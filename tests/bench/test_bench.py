"""Perf-harness tests: smoke-run the bench, validate schema, pin determinism."""

import json

import numpy as np
import pytest

from repro.bench.runner import run_inference_bench, run_training_bench, write_bench_files
from repro.bench.schema import SCHEMA_VERSION, validate_bench_payload
from repro.bench.workloads import BenchWorkload, profile_workloads

TINY = (
    BenchWorkload(
        name="tiny",
        dim=128,
        levels=2,
        chunk_size=3,
        n_features=12,
        n_classes=3,
        n_train=60,
        n_test=40,
    ),
)


@pytest.fixture(scope="module")
def inference_payload():
    return run_inference_bench(TINY, repeats=1, profile="tiny")


@pytest.fixture(scope="module")
def training_payload():
    return run_training_bench(TINY, repeats=1, profile="tiny")


class TestProfiles:
    def test_known_profiles(self):
        assert profile_workloads("smoke")
        assert profile_workloads("full")
        with pytest.raises(ValueError):
            profile_workloads("nope")

    def test_full_profile_covers_acceptance_config(self):
        # The perf gate is defined at the paper's efficiency configuration.
        assert any(
            w.dim == 2000 and w.levels == 4 and w.chunk_size == 5
            for w in profile_workloads("full")
        )

    def test_workload_dataset_is_pinned(self):
        a = TINY[0].make_dataset()
        b = TINY[0].make_dataset()
        assert np.array_equal(a.train_features, b.train_features)
        assert np.array_equal(a.test_labels, b.test_labels)


class TestPayloads:
    def test_inference_schema_valid(self, inference_payload):
        validate_bench_payload(inference_payload, "inference")
        entry = inference_payload["workloads"][0]
        assert entry["checks"]["outputs_match"] is True
        assert entry["speedups"]["predict"] > 0

    def test_training_schema_valid(self, training_payload):
        validate_bench_payload(training_payload, "training")
        assert training_payload["workloads"][0]["checks"]["outputs_match"] is True

    def test_checksums_deterministic_across_runs(self, inference_payload, training_payload):
        again_inference = run_inference_bench(TINY, repeats=1, profile="tiny")
        again_training = run_training_bench(TINY, repeats=1, profile="tiny")
        assert (
            inference_payload["workloads"][0]["checks"]["outputs_sha256"]
            == again_inference["workloads"][0]["checks"]["outputs_sha256"]
        )
        assert (
            training_payload["workloads"][0]["checks"]["outputs_sha256"]
            == again_training["workloads"][0]["checks"]["outputs_sha256"]
        )

    def test_payload_is_json_serialisable(self, inference_payload):
        parsed = json.loads(json.dumps(inference_payload))
        validate_bench_payload(parsed, "inference")

    def test_inference_payload_embeds_telemetry(self, inference_payload):
        counters = inference_payload["telemetry"]["counters"]
        # One instrumented predict pass per workload: fused hits and
        # encoder path selection must be on the record.
        assert counters["inference.fused.queries"] >= TINY[0].n_test
        assert any(name.startswith("encoder.encode.batches{") for name in counters)

    def test_training_payload_embeds_telemetry(self, training_payload):
        telemetry_block = training_payload["telemetry"]
        assert telemetry_block["counters"]["trainer.samples_observed"] >= TINY[0].n_train
        assert telemetry_block["timers"]["trainer.observe_seconds"]["count"] >= 1

    def test_rejects_malformed_telemetry_block(self, inference_payload):
        bad = json.loads(json.dumps(inference_payload))
        bad["telemetry"] = {"counters": {"c": "not-an-int"}, "timers": {}, "histograms": {}}
        with pytest.raises(ValueError):
            validate_bench_payload(bad, "inference")

    def test_payload_without_telemetry_still_validates(self, inference_payload):
        legacy = json.loads(json.dumps(inference_payload))
        del legacy["telemetry"]
        validate_bench_payload(legacy, "inference")


class TestSchemaValidator:
    def test_rejects_non_object(self):
        with pytest.raises(ValueError):
            validate_bench_payload([])

    def test_rejects_wrong_version(self, inference_payload):
        bad = json.loads(json.dumps(inference_payload))
        bad["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError):
            validate_bench_payload(bad)

    def test_rejects_missing_timing(self, inference_payload):
        bad = json.loads(json.dumps(inference_payload))
        del bad["workloads"][0]["timings"]["predict_fused"]
        with pytest.raises(ValueError):
            validate_bench_payload(bad, "inference")

    def test_rejects_diverged_outputs(self, inference_payload):
        bad = json.loads(json.dumps(inference_payload))
        bad["workloads"][0]["checks"]["outputs_match"] = False
        with pytest.raises(ValueError):
            validate_bench_payload(bad)

    def test_rejects_benchmark_mismatch(self, inference_payload):
        with pytest.raises(ValueError):
            validate_bench_payload(inference_payload, "training")


class TestWriteFiles:
    def test_writes_schema_valid_files(self, tmp_path, capsys):
        training_path, inference_path = write_bench_files(
            "smoke", out_dir=tmp_path, repeats=1
        )
        assert training_path.name == "BENCH_training.json"
        assert inference_path.name == "BENCH_inference.json"
        validate_bench_payload(json.loads(training_path.read_text()), "training")
        validate_bench_payload(json.loads(inference_path.read_text()), "inference")


class TestKernelsBlock:
    @pytest.fixture(scope="class")
    def kernels_payload(self, inference_payload):
        from repro.bench.kernel_bench import build_kernels_block

        payload = json.loads(json.dumps(inference_payload))  # deep copy
        payload["kernels"] = build_kernels_block(TINY[0], repeats=1)
        return payload

    def test_block_schema_valid_and_gated(self, kernels_payload):
        from repro.kernels.reference import OP_NAMES

        validate_bench_payload(kernels_payload, "inference")
        block = kernels_payload["kernels"]
        assert set(block["primitives"]) == set(OP_NAMES)
        assert block["checks"]["kernel_outputs_match"] is True
        for primitive in block["primitives"].values():
            assert primitive["bit_identical"] is True
            assert "numpy" in primitive["backends"]
            assert primitive["speedup_vs_numpy"] >= 0

    def test_block_is_json_serialisable(self, kernels_payload):
        json.dumps(kernels_payload)

    def test_rejects_diverged_kernel(self, kernels_payload):
        bad = json.loads(json.dumps(kernels_payload))
        op = next(iter(bad["kernels"]["primitives"]))
        bad["kernels"]["primitives"][op]["bit_identical"] = False
        with pytest.raises(ValueError, match="bit_identical"):
            validate_bench_payload(bad, "inference")

    def test_rejects_failed_outputs_match_check(self, kernels_payload):
        bad = json.loads(json.dumps(kernels_payload))
        bad["kernels"]["checks"]["kernel_outputs_match"] = False
        with pytest.raises(ValueError, match="kernel_outputs_match"):
            validate_bench_payload(bad, "inference")

    def test_rejects_missing_numpy_reference_timing(self, kernels_payload):
        bad = json.loads(json.dumps(kernels_payload))
        op = next(iter(bad["kernels"]["primitives"]))
        del bad["kernels"]["primitives"][op]["backends"]["numpy"]
        with pytest.raises(ValueError, match="numpy reference"):
            validate_bench_payload(bad, "inference")

    def test_rejects_kernels_block_on_training_payload(self, training_payload):
        from repro.bench.kernel_bench import build_kernels_block

        bad = json.loads(json.dumps(training_payload))
        bad["kernels"] = build_kernels_block(TINY[0], repeats=1)
        with pytest.raises(ValueError, match="inference payload only"):
            validate_bench_payload(bad, "training")

    def test_kernel_profile_embeds_block(self, tmp_path, capsys):
        from repro.bench.runner import run_bench_profile

        training, inference = run_bench_profile("kernels-smoke", repeats=1)
        assert inference is not None and "kernels" in inference
        validate_bench_payload(inference, "inference")
        assert inference["kernels"]["checks"]["kernel_outputs_match"] is True
        assert training is not None and "kernels" not in training

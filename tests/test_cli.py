"""CLI tests (argument parsing + end-to-end train/evaluate round trip)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.application == "activity"
        assert args.dim == 2_000

    def test_unknown_application_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--application", "mnist"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "activity" in out
        assert "fig04_quantization_accuracy" in out

    def test_train_evaluate_round_trip(self, tmp_path, capsys):
        model_path = str(tmp_path / "model.npz")
        status = main(
            ["train", "--application", "face", "--train-limit", "120",
             "--dim", "256", "--levels", "2", "--chunk-size", "4",
             "--retrain", "1", "--out", model_path]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "test accuracy" in out

        status = main(
            ["evaluate", "--model", model_path, "--application", "face",
             "--train-limit", "120"]
        )
        assert status == 0
        assert "test accuracy" in capsys.readouterr().out

    def test_experiment_command(self, capsys):
        assert main(["experiment", "fig16_resources"]) == 0
        assert "Fig. 16" in capsys.readouterr().out

    def test_stats_command_writes_valid_snapshot(self, tmp_path, capsys):
        import json

        from repro.telemetry import validate_stats_payload

        out_path = tmp_path / "STATS.json"
        assert main(["stats", "--out", str(out_path)]) == 0
        payload = validate_stats_payload(json.loads(out_path.read_text()))
        assert payload["telemetry"]["counters"]["inference.fused.queries"] > 0
        assert f"wrote {out_path}" in capsys.readouterr().out

    def test_stats_parser_defaults(self):
        args = build_parser().parse_args(["stats"])
        assert args.out == "STATS.json"
        assert args.overhead_gate is None

    def test_unknown_experiment_fails(self, capsys):
        assert main(["experiment", "fig99_nonexistent"]) == 2

    def test_train_on_user_npz(self, tmp_path, capsys, small_dataset):
        from repro.datasets.loaders import save_npz

        data_path = tmp_path / "user.npz"
        save_npz(small_dataset, data_path)
        status = main(
            ["train", "--data", str(data_path), "--dim", "256",
             "--levels", "2", "--chunk-size", "4", "--retrain", "0"]
        )
        assert status == 0
        assert "test accuracy" in capsys.readouterr().out


class TestBenchCommand:
    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.profile == "full"
        assert args.repeats == 3
        assert args.kernel_backend is None

    def test_bench_accepts_kernel_profiles_and_backend(self):
        args = build_parser().parse_args(
            ["bench", "--profile", "kernels-smoke", "--kernel-backend", "numpy"]
        )
        assert args.profile == "kernels-smoke"
        assert args.kernel_backend == "numpy"

    def test_bench_kernels_smoke_embeds_gated_block(self, tmp_path, capsys):
        import json

        from repro.bench.schema import validate_bench_payload
        from repro.kernels import registry

        mode = registry.current_mode()
        try:
            assert (
                main(
                    [
                        "bench",
                        "--profile",
                        "kernels-smoke",
                        "--kernel-backend",
                        "numpy",
                        "--out-dir",
                        str(tmp_path),
                        "--repeats",
                        "1",
                    ]
                )
                == 0
            )
        finally:
            registry.set_backend(mode)
        assert "[kernels] mode=numpy" in capsys.readouterr().out
        payload = validate_bench_payload(
            json.loads((tmp_path / "BENCH_inference.json").read_text()), "inference"
        )
        assert payload["kernels"]["checks"]["kernel_outputs_match"] is True

    def test_bench_smoke_writes_files(self, tmp_path, capsys):
        import json

        from repro.bench.schema import validate_bench_payload

        assert main(["bench", "--profile", "smoke", "--out-dir", str(tmp_path), "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "outputs match: True" in out
        for name, kind in (
            ("BENCH_training.json", "training"),
            ("BENCH_inference.json", "inference"),
        ):
            validate_bench_payload(json.loads((tmp_path / name).read_text()), kind)


class TestServingCommands:
    def test_loadgen_parser_defaults(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.profile == "full"
        assert args.concurrency == 64
        assert args.max_batch == 64
        assert args.dispatch == "inline"

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8752
        assert args.max_queue_depth == 1_024

    def test_loadgen_rejects_bad_dispatch(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loadgen", "--dispatch", "fork"])

    def test_loadgen_smoke_writes_valid_artifact(self, tmp_path, capsys):
        import json

        from repro.serving import validate_serving_payload

        status = main(
            ["loadgen", "--profile", "smoke", "--requests", "200",
             "--concurrency", "16", "--max-batch", "16",
             "--out-dir", str(tmp_path)]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "BENCH_serving.json" in out
        assert "0 dropped" in out
        payload = validate_serving_payload(
            json.loads((tmp_path / "BENCH_serving.json").read_text())
        )
        assert payload["results"]["requests"]["sent"] == 200

    def test_loadgen_fleet_parser_defaults(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.tenants == 1
        assert args.scenario == "uniform"
        assert args.swap is False
        assert args.tenant_quota is None
        assert args.cache_budget_bytes is None
        fleet = build_parser().parse_args(
            ["loadgen", "--profile", "fleet-smoke", "--tenants", "3",
             "--scenario", "bursty", "--swap"]
        )
        assert fleet.profile == "fleet-smoke"
        assert fleet.tenants == 3 and fleet.scenario == "bursty" and fleet.swap

    @pytest.mark.parametrize(
        "argv",
        [
            ["serve", "--deadline-ms", "0"],
            ["serve", "--deadline-ms", "-5"],
            ["serve", "--scrub-interval", "-1"],
            ["serve", "--models", "edge7"],  # missing =PATH
            ["serve", "--models", "=model.npz"],  # empty tenant name
            ["serve", "--tenant-quota", "0"],
            ["serve", "--cache-budget-bytes", "0"],
            ["serve", "--max-wait-ms", "0"],
            ["loadgen", "--tenants", "0"],
            ["loadgen", "--scenario", "tsunami"],
            ["loadgen", "--max-wait-ms", "nope"],
        ],
    )
    def test_bad_flag_values_fail_at_parse_time(self, argv):
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv)

    def test_serve_flag_parsing(self):
        args = build_parser().parse_args(
            ["serve", "--models", "edge-7=a.npz", "camera=b.npz",
             "--deadline-ms", "12.5", "--scrub-interval", "0",
             "--tenant-quota", "8", "--cache-budget-bytes", "65536"]
        )
        assert args.models == [("edge-7", "a.npz"), ("camera", "b.npz")]
        assert args.deadline_ms == 12.5
        assert args.scrub_interval == 0.0
        assert args.tenant_quota == 8
        assert args.cache_budget_bytes == 65_536

    def test_serve_rejects_model_and_models_together(self, tmp_path, capsys):
        status = main(
            ["serve", "--model", "a.npz", "--models", "edge-7=b.npz"]
        )
        assert status == 2
        assert "not both" in capsys.readouterr().err

    def test_loadgen_fleet_smoke_writes_valid_artifact(self, tmp_path, capsys):
        import json

        from repro.serving import validate_serving_payload

        status = main(
            ["loadgen", "--profile", "fleet-smoke", "--requests", "120",
             "--concurrency", "16", "--max-batch", "16",
             "--out-dir", str(tmp_path)]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "fleet: 3 tenants (mixed)" in out
        assert "hot-swapped tenant-0 v1→v2 at availability 1.000" in out
        payload = validate_serving_payload(
            json.loads((tmp_path / "BENCH_serving.json").read_text())
        )
        assert payload["workload"]["n_tenants"] == 3
        assert payload["results"]["requests"]["sent"] == 120
        assert payload["checks"]["per_tenant_bit_identity"] is True
        assert payload["checks"]["swap_zero_downtime"] is True

    def test_open_loop_parser_defaults(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.open_loop is False
        assert args.closed_loop is False
        assert args.rate is None
        assert args.shards == 1
        assert args.kill_shard is False
        serve = build_parser().parse_args(["serve"])
        assert serve.shards == 1

    def test_open_loop_rate_sweep_parsing(self):
        args = build_parser().parse_args(
            ["loadgen", "--open-loop", "--rate", "400", "--rate", "800",
             "--shards", "2", "--kill-shard"]
        )
        assert args.open_loop and not args.closed_loop
        assert args.rate == [400.0, 800.0]
        assert args.shards == 2 and args.kill_shard

    @pytest.mark.parametrize(
        "argv",
        [
            ["loadgen", "--open-loop", "--closed-loop"],  # mutually exclusive
            ["loadgen", "--rate", "0"],
            ["loadgen", "--rate", "-100"],
            ["loadgen", "--shards", "0"],
            ["serve", "--shards", "0"],
        ],
    )
    def test_open_loop_bad_flags_fail_at_parse_time(self, argv):
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv)

    @pytest.mark.parametrize(
        ("argv", "needle"),
        [
            (["loadgen", "--open-loop"], "--rate"),
            (["loadgen", "--rate", "500"], "--open-loop"),
            (["loadgen", "--shards", "2"], "--open-loop"),
            (["loadgen", "--open-loop", "--rate", "500", "--kill-shard"],
             "--shards >= 2"),
            (["serve", "--shards", "2"], "--model"),
        ],
    )
    def test_flag_combinations_exit_2(self, argv, needle, capsys):
        assert main(argv) == 2
        assert needle in capsys.readouterr().err

    def test_loadgen_open_loop_smoke_writes_valid_artifact(self, tmp_path, capsys):
        import json

        from repro.serving import validate_serving_payload

        status = main(
            ["loadgen", "--profile", "smoke", "--open-loop",
             "--rate", "300", "--rate", "600", "--requests", "120",
             "--max-batch", "16", "--out-dir", str(tmp_path)]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "rate 300 rps" in out and "rate 600 rps" in out
        assert "max send lag" in out
        payload = validate_serving_payload(
            json.loads((tmp_path / "BENCH_serving.json").read_text())
        )
        assert payload["workload"]["mode"] == "open"
        rates = payload["results"]["open_loop"]["rates"]
        assert [block["rate"] for block in rates] == [300.0, 600.0]
        # CO-safety: every swept rate reports latency from the *intended*
        # arrival, so requests.sent covers the full schedule per rate.
        assert payload["results"]["requests"]["sent"] == 120 * 2


class TestStreamCommand:
    def test_stream_parser_defaults(self):
        args = build_parser().parse_args(["stream"])
        assert args.profile == "full"
        assert args.batches is None
        assert args.batch_size is None
        assert args.decay is None
        assert args.sketch_capacity is None
        assert args.out_dir == "."

    @pytest.mark.parametrize(
        "argv",
        [
            ["stream", "--profile", "firehose"],
            ["stream", "--batches", "0"],
            ["stream", "--batch-size", "-4"],
            ["stream", "--sketch-capacity", "0"],
            ["stream", "--decay", "0"],
            ["stream", "--decay", "1.5"],
            ["stream", "--decay", "-0.5"],
            ["stream", "--decay", "soon"],
        ],
    )
    def test_stream_bad_flags_fail_at_parse_time(self, argv):
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv)

    def test_serve_partial_fit_flag(self):
        assert build_parser().parse_args(["serve"]).partial_fit is False
        assert build_parser().parse_args(["serve", "--partial-fit"]).partial_fit is True

    def test_stream_smoke_writes_valid_artifact(self, tmp_path, capsys):
        import json

        from repro.streaming import validate_streaming_payload

        status = main(
            ["stream", "--profile", "smoke", "--batches", "8",
             "--batch-size", "60", "--out-dir", str(tmp_path)]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "BENCH_streaming.json" in out
        assert "0 dropped" in out
        payload = validate_streaming_payload(
            json.loads((tmp_path / "BENCH_streaming.json").read_text())
        )
        assert payload["workload"]["n_batches"] == 8

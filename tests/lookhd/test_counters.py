import numpy as np
import pytest

from repro.hdc.item_memory import RandomItemMemory
from repro.lookhd.counters import ChunkCounters


class TestChunkCounters:
    def test_observe_single_sample(self):
        counters = ChunkCounters(n_chunks=3, n_rows=8)
        counters.observe(np.array([1, 5, 7]))
        assert counters.counts[0, 1] == 1
        assert counters.counts[1, 5] == 1
        assert counters.counts[2, 7] == 1
        assert counters.n_samples == 1

    def test_observe_batch_accumulates(self):
        counters = ChunkCounters(2, 4)
        counters.observe(np.array([[0, 1], [0, 2], [0, 1]]))
        assert counters.counts[0, 0] == 3
        assert counters.counts[1, 1] == 2
        assert counters.n_samples == 3

    def test_out_of_range_address_rejected(self):
        counters = ChunkCounters(2, 4)
        with pytest.raises(ValueError):
            counters.observe(np.array([0, 4]))

    def test_wrong_chunk_count_rejected(self):
        counters = ChunkCounters(2, 4)
        with pytest.raises(ValueError):
            counters.observe(np.array([[0, 1, 2]]))

    def test_materialize_matches_manual(self):
        rng = np.random.default_rng(0)
        table = rng.integers(-3, 4, size=(8, 32))
        positions = RandomItemMemory(2, 32, rng=1).vectors
        counters = ChunkCounters(2, 8)
        counters.observe(np.array([[3, 5], [3, 1]]))
        manual = (
            (2 * table[3].astype(np.int64)) * positions[0]
            + (table[5].astype(np.int64) + table[1].astype(np.int64)) * positions[1]
        )
        assert np.array_equal(counters.materialize(table, positions), manual)

    def test_sparse_and_dense_paths_agree(self):
        rng = np.random.default_rng(1)
        table = rng.integers(-3, 4, size=(64, 16))
        positions = RandomItemMemory(3, 16, rng=2).vectors
        sparse = ChunkCounters(3, 64)
        sparse.observe(rng.integers(0, 64, size=(4, 3)))  # sparse occupancy
        dense = ChunkCounters(3, 64)
        dense.counts = sparse.counts.copy()
        dense.counts += 1  # force the dense path (full occupancy)
        sparse_result = sparse.materialize(table, positions)
        dense_result = dense.materialize(table, positions)
        all_ones = ChunkCounters(3, 64)
        all_ones.counts = np.ones((3, 64), dtype=np.int64)
        ones_result = all_ones.materialize(table, positions)
        assert np.array_equal(dense_result, sparse_result + ones_result)

    def test_merge(self):
        a = ChunkCounters(2, 4)
        a.observe(np.array([0, 1]))
        b = ChunkCounters(2, 4)
        b.observe(np.array([0, 2]))
        a.merge(b)
        assert a.counts[0, 0] == 2
        assert a.n_samples == 2

    def test_merge_geometry_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ChunkCounters(2, 4).merge(ChunkCounters(2, 8))

    def test_occupancy(self):
        counters = ChunkCounters(2, 4)
        assert counters.occupancy() == 0.0
        counters.observe(np.array([0, 0]))
        assert counters.occupancy() == pytest.approx(2 / 8)

    def test_memory_bytes(self):
        assert ChunkCounters(3, 16).memory_bytes(4) == 3 * 16 * 4

import numpy as np
import pytest

from repro.hdc.item_memory import RandomItemMemory
from repro.lookhd.counters import ChunkCounters, CounterOverflowError


class TestChunkCounters:
    def test_observe_single_sample(self):
        counters = ChunkCounters(n_chunks=3, n_rows=8)
        counters.observe(np.array([1, 5, 7]))
        assert counters.counts[0, 1] == 1
        assert counters.counts[1, 5] == 1
        assert counters.counts[2, 7] == 1
        assert counters.n_samples == 1

    def test_observe_batch_accumulates(self):
        counters = ChunkCounters(2, 4)
        counters.observe(np.array([[0, 1], [0, 2], [0, 1]]))
        assert counters.counts[0, 0] == 3
        assert counters.counts[1, 1] == 2
        assert counters.n_samples == 3

    def test_out_of_range_address_rejected(self):
        counters = ChunkCounters(2, 4)
        with pytest.raises(ValueError):
            counters.observe(np.array([0, 4]))

    def test_wrong_chunk_count_rejected(self):
        counters = ChunkCounters(2, 4)
        with pytest.raises(ValueError):
            counters.observe(np.array([[0, 1, 2]]))

    def test_materialize_matches_manual(self):
        rng = np.random.default_rng(0)
        table = rng.integers(-3, 4, size=(8, 32))
        positions = RandomItemMemory(2, 32, rng=1).vectors
        counters = ChunkCounters(2, 8)
        counters.observe(np.array([[3, 5], [3, 1]]))
        manual = (
            (2 * table[3].astype(np.int64)) * positions[0]
            + (table[5].astype(np.int64) + table[1].astype(np.int64)) * positions[1]
        )
        assert np.array_equal(counters.materialize(table, positions), manual)

    def test_sparse_and_dense_paths_agree(self):
        rng = np.random.default_rng(1)
        table = rng.integers(-3, 4, size=(64, 16))
        positions = RandomItemMemory(3, 16, rng=2).vectors
        sparse = ChunkCounters(3, 64)
        sparse.observe(rng.integers(0, 64, size=(4, 3)))  # sparse occupancy
        dense = ChunkCounters(3, 64)
        dense.counts = sparse.counts.copy()
        dense.counts += 1  # force the dense path (full occupancy)
        sparse_result = sparse.materialize(table, positions)
        dense_result = dense.materialize(table, positions)
        all_ones = ChunkCounters(3, 64)
        all_ones.counts = np.ones((3, 64), dtype=np.int64)
        ones_result = all_ones.materialize(table, positions)
        assert np.array_equal(dense_result, sparse_result + ones_result)

    def test_merge(self):
        a = ChunkCounters(2, 4)
        a.observe(np.array([0, 1]))
        b = ChunkCounters(2, 4)
        b.observe(np.array([0, 2]))
        a.merge(b)
        assert a.counts[0, 0] == 2
        assert a.n_samples == 2

    def test_merge_geometry_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ChunkCounters(2, 4).merge(ChunkCounters(2, 8))

    def test_occupancy(self):
        counters = ChunkCounters(2, 4)
        assert counters.occupancy() == 0.0
        counters.observe(np.array([0, 0]))
        assert counters.occupancy() == pytest.approx(2 / 8)

    def test_memory_bytes(self):
        assert ChunkCounters(3, 16).memory_bytes(4) == 3 * 16 * 4


class TestOverflowHardening:
    """Saturation is detected before mutation: widen or raise, never wrap."""

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValueError):
            ChunkCounters(2, 4, dtype=np.float64)
        with pytest.raises(ValueError):
            ChunkCounters(2, 4, dtype=np.uint8)

    def test_observe_widens_before_wrapping(self):
        counters = ChunkCounters(1, 4, dtype=np.int8)
        counters.observe(np.zeros((100, 1), dtype=np.int64))
        assert counters.dtype == np.int8
        counters.observe(np.zeros((100, 1), dtype=np.int64))  # peak 200 > 127
        assert counters.dtype == np.int16
        assert counters.counts[0, 0] == 200
        assert counters.n_samples == 200

    def test_widened_counters_materialize_like_int64(self):
        rng = np.random.default_rng(3)
        table = rng.integers(-3, 4, size=(4, 16))
        positions = RandomItemMemory(1, 16, rng=5).vectors
        small = ChunkCounters(1, 4, dtype=np.int8)
        wide = ChunkCounters(1, 4)
        for _ in range(6):
            batch = rng.integers(0, 4, size=(100, 1))
            small.observe(batch)
            wide.observe(batch)
        assert small.dtype == np.int16  # widened along the way (600 samples / 4 rows)
        assert np.array_equal(
            small.materialize(table, positions), wide.materialize(table, positions)
        )

    def test_widen_false_raises_and_leaves_state_intact(self):
        counters = ChunkCounters(1, 4, dtype=np.int8, widen=False)
        counters.observe(np.zeros((100, 1), dtype=np.int64))
        before = counters.counts.copy()
        with pytest.raises(CounterOverflowError):
            counters.observe(np.zeros((100, 1), dtype=np.int64))
        assert counters.dtype == np.int8
        assert np.array_equal(counters.counts, before)
        assert counters.n_samples == 100

    def test_merge_widens(self):
        a = ChunkCounters(1, 4, dtype=np.int8)
        b = ChunkCounters(1, 4, dtype=np.int8)
        a.observe(np.zeros((100, 1), dtype=np.int64))
        b.observe(np.zeros((100, 1), dtype=np.int64))
        a.merge(b)
        assert a.dtype == np.int16
        assert a.counts[0, 0] == 200
        assert a.n_samples == 200

    def test_merge_rejects_non_counters(self):
        with pytest.raises(TypeError):
            ChunkCounters(2, 4).merge(np.zeros((2, 4)))

    def test_merge_rejects_corrupted_counts_array(self):
        a = ChunkCounters(2, 4)
        b = ChunkCounters(2, 4)
        b.counts = np.zeros((2, 5), dtype=np.int64)  # corrupted in transit
        with pytest.raises(ValueError, match="corrupted"):
            a.merge(b)

    def test_merge_rejects_negative_sample_count(self):
        a = ChunkCounters(2, 4)
        b = ChunkCounters(2, 4)
        b.n_samples = -1
        with pytest.raises(ValueError):
            a.merge(b)

    def test_from_counts_round_trip(self):
        counts = np.arange(8, dtype=np.int64).reshape(2, 4)
        counters = ChunkCounters.from_counts(counts, n_samples=7)
        assert np.array_equal(counters.counts, counts)
        assert counters.n_samples == 7
        assert counters.dtype == np.int64

    def test_from_counts_validation(self):
        with pytest.raises(ValueError):
            ChunkCounters.from_counts(np.zeros(4, dtype=np.int64))
        with pytest.raises(ValueError):
            ChunkCounters.from_counts(np.zeros((2, 4), dtype=np.int64), n_samples=-1)

import numpy as np

from repro.lookhd.classifier import LookHDClassifier, LookHDConfig
from repro.lookhd.retraining import retrain_compressed


def fit_base(small_dataset, seed=0):
    clf = LookHDClassifier(LookHDConfig(dim=512, levels=4, chunk_size=4, seed=seed))
    clf.fit(small_dataset.train_features, small_dataset.train_labels)
    encoded = clf.encoder.encode_many(small_dataset.train_features)
    return clf, encoded


class TestRetrainCompressed:
    def test_accuracy_never_collapses(self, small_dataset):
        clf, encoded = fit_base(small_dataset)
        before = clf.score(small_dataset.test_features, small_dataset.test_labels)
        retrain_compressed(
            clf.compressed_model, encoded, small_dataset.train_labels, iterations=8
        )
        after = clf.score(small_dataset.test_features, small_dataset.test_labels)
        # Best-state restoration guarantees retraining cannot end worse
        # than the best traversed state; allow small generalisation slack.
        assert after >= before - 0.05

    def test_trace_lengths(self, small_dataset):
        clf, encoded = fit_base(small_dataset)
        trace = retrain_compressed(
            clf.compressed_model, encoded, small_dataset.train_labels, iterations=4,
            stop_when_clean=False,
        )
        assert trace.iterations == 4
        assert len(trace.train_accuracy) == 4

    def test_early_stop_on_clean_pass(self, small_dataset):
        clf, encoded = fit_base(small_dataset)
        trace = retrain_compressed(
            clf.compressed_model, encoded, small_dataset.train_labels, iterations=50
        )
        assert trace.iterations < 50
        assert trace.updates_per_iteration[-1] == 0

    def test_zero_iterations_is_noop(self, small_dataset):
        clf, encoded = fit_base(small_dataset)
        before = clf.compressed_model.compressed.copy()
        trace = retrain_compressed(
            clf.compressed_model, encoded, small_dataset.train_labels, iterations=0
        )
        assert trace.iterations == 0
        assert np.array_equal(before, clf.compressed_model.compressed)

    def test_validation_trace_recorded(self, small_dataset):
        clf, encoded = fit_base(small_dataset)
        encoded_val = clf.encoder.encode_many(small_dataset.test_features)
        trace = retrain_compressed(
            clf.compressed_model,
            encoded,
            small_dataset.train_labels,
            iterations=3,
            validation=(encoded_val, small_dataset.test_labels),
            stop_when_clean=False,
        )
        assert len(trace.validation_accuracy) == 3

    def test_total_updates_property(self, small_dataset):
        clf, encoded = fit_base(small_dataset)
        trace = retrain_compressed(
            clf.compressed_model, encoded, small_dataset.train_labels, iterations=3,
            stop_when_clean=False,
        )
        assert trace.total_updates == sum(trace.updates_per_iteration)

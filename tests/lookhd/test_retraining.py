import numpy as np
import pytest

from repro.lookhd.classifier import LookHDClassifier, LookHDConfig
from repro.lookhd.retraining import retrain_compressed


def fit_base(small_dataset, seed=0):
    clf = LookHDClassifier(LookHDConfig(dim=512, levels=4, chunk_size=4, seed=seed))
    clf.fit(small_dataset.train_features, small_dataset.train_labels)
    encoded = clf.encoder.encode_many(small_dataset.train_features)
    return clf, encoded


class TestRetrainCompressed:
    def test_accuracy_never_collapses(self, small_dataset):
        clf, encoded = fit_base(small_dataset)
        before = clf.score(small_dataset.test_features, small_dataset.test_labels)
        retrain_compressed(
            clf.compressed_model, encoded, small_dataset.train_labels, iterations=8
        )
        after = clf.score(small_dataset.test_features, small_dataset.test_labels)
        # Best-state restoration guarantees retraining cannot end worse
        # than the best traversed state; allow small generalisation slack.
        assert after >= before - 0.05

    def test_trace_lengths(self, small_dataset):
        clf, encoded = fit_base(small_dataset)
        trace = retrain_compressed(
            clf.compressed_model, encoded, small_dataset.train_labels, iterations=4,
            stop_when_clean=False,
        )
        assert trace.iterations == 4
        assert len(trace.train_accuracy) == 4

    def test_early_stop_on_clean_pass(self, small_dataset):
        clf, encoded = fit_base(small_dataset)
        trace = retrain_compressed(
            clf.compressed_model, encoded, small_dataset.train_labels, iterations=50
        )
        assert trace.iterations < 50
        assert trace.updates_per_iteration[-1] == 0

    def test_zero_iterations_is_noop(self, small_dataset):
        clf, encoded = fit_base(small_dataset)
        before = clf.compressed_model.compressed.copy()
        trace = retrain_compressed(
            clf.compressed_model, encoded, small_dataset.train_labels, iterations=0
        )
        assert trace.iterations == 0
        assert np.array_equal(before, clf.compressed_model.compressed)

    def test_validation_trace_recorded(self, small_dataset):
        clf, encoded = fit_base(small_dataset)
        encoded_val = clf.encoder.encode_many(small_dataset.test_features)
        trace = retrain_compressed(
            clf.compressed_model,
            encoded,
            small_dataset.train_labels,
            iterations=3,
            validation=(encoded_val, small_dataset.test_labels),
            stop_when_clean=False,
        )
        assert len(trace.validation_accuracy) == 3

    def test_total_updates_property(self, small_dataset):
        clf, encoded = fit_base(small_dataset)
        trace = retrain_compressed(
            clf.compressed_model, encoded, small_dataset.train_labels, iterations=3,
            stop_when_clean=False,
        )
        assert trace.total_updates == sum(trace.updates_per_iteration)

    def test_column_labels_raise(self, small_dataset):
        clf, encoded = fit_base(small_dataset)
        column = np.asarray(small_dataset.train_labels).reshape(-1, 1)
        with pytest.raises(ValueError, match="labels"):
            retrain_compressed(clf.compressed_model, encoded, column, iterations=1)

    def test_column_validation_labels_raise(self, small_dataset):
        clf, encoded = fit_base(small_dataset)
        encoded_val = clf.encoder.encode_many(small_dataset.test_features)
        column = np.asarray(small_dataset.test_labels).reshape(-1, 1)
        with pytest.raises(ValueError, match="validation labels"):
            retrain_compressed(
                clf.compressed_model,
                encoded,
                small_dataset.train_labels,
                iterations=1,
                validation=(encoded_val, column),
            )


def _sabotage(model):
    """A retrain_update stand-in that wrecks the model instead of refining it."""

    def update(label, predicted, encoded_row):
        model.compressed[:] = 0.0
        model.mark_dirty()

    return update


def _thrash_labels(small_dataset):
    """Train labels with a few flips so a retrain pass must make updates."""
    labels = np.asarray(small_dataset.train_labels).copy()
    labels[:8] = (labels[:8] + 1) % int(labels.max() + 1)
    return labels


class TestBestStateRestore:
    def test_degrading_pass_is_rolled_back(self, small_dataset, monkeypatch):
        clf, encoded = fit_base(small_dataset)
        model = clf.compressed_model
        before_compressed = model.compressed.copy()
        before_prepared = model.prepared_classes.copy()
        monkeypatch.setattr(model, "retrain_update", _sabotage(model))
        trace = retrain_compressed(
            model, encoded, _thrash_labels(small_dataset), iterations=1,
            stop_when_clean=False,
        )
        # The sabotaged pass must have fired (otherwise this test proves
        # nothing) and the best-state restore must roll it back exactly.
        assert trace.updates_per_iteration[0] > 0
        np.testing.assert_array_equal(model.compressed, before_compressed)
        np.testing.assert_array_equal(model.prepared_classes, before_prepared)

    def test_restore_judged_on_validation_split(self, small_dataset, monkeypatch):
        clf, encoded = fit_base(small_dataset)
        encoded_val = clf.encoder.encode_many(small_dataset.test_features)
        model = clf.compressed_model
        before = model.compressed.copy()
        monkeypatch.setattr(model, "retrain_update", _sabotage(model))
        trace = retrain_compressed(
            model,
            encoded,
            _thrash_labels(small_dataset),
            iterations=1,
            validation=(encoded_val, small_dataset.test_labels),
            stop_when_clean=False,
        )
        assert trace.updates_per_iteration[0] > 0
        np.testing.assert_array_equal(model.compressed, before)

    def test_restore_invalidates_fused_score_table(self, small_dataset, monkeypatch):
        clf, encoded = fit_base(small_dataset)
        test = small_dataset.test_features
        # Warm the fused score table at the pre-retrain model version.
        before_fused = clf.predict(test)
        model = clf.compressed_model
        monkeypatch.setattr(model, "retrain_update", _sabotage(model))
        trace = retrain_compressed(
            model, encoded, _thrash_labels(small_dataset), iterations=1,
            stop_when_clean=False,
        )
        assert trace.updates_per_iteration[0] > 0
        # The restore path bumps the model version (mark_dirty), so the
        # fused engine must rebuild its score table instead of serving the
        # warmed-but-stale one; restored state == initial state, so fused
        # predictions must round-trip exactly, and agree with the
        # hypervector-domain reference.
        after_fused = clf.predict(test)
        np.testing.assert_array_equal(after_fused, before_fused)
        np.testing.assert_array_equal(after_fused, clf.predict_reference(test))

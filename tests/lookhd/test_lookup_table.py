import numpy as np
import pytest

from repro.hdc.item_memory import LevelItemMemory
from repro.lookhd.lookup_table import ChunkLookupTable
from repro.quantization.codebook import address_to_levels


@pytest.fixture(scope="module")
def memory():
    return LevelItemMemory(4, 256, rng=0)


class TestChunkLookupTable:
    def test_row_count(self, memory):
        table = ChunkLookupTable(memory, 3)
        assert len(table) == 4**3

    def test_rows_match_direct_encoding(self, memory):
        # Every row must equal Eq. 2 computed directly — the core
        # correctness property of the pre-stored table.
        table = ChunkLookupTable(memory, 3)
        assert table.verify_against_encoder(n_samples=32, rng=1)

    def test_specific_row(self, memory):
        table = ChunkLookupTable(memory, 2)
        address = 4 * 1 + 2  # levels (1, 2)
        expected = memory[1].astype(np.int64) + np.roll(memory[2], 1).astype(np.int64)
        assert np.array_equal(table.table[address].astype(np.int64), expected)

    def test_lookup_batch(self, memory):
        table = ChunkLookupTable(memory, 2)
        out = table.lookup(np.array([[0, 1], [2, 3]]))
        assert out.shape == (2, 2, 256)

    def test_weighted_sum_matches_manual(self, memory):
        table = ChunkLookupTable(memory, 2)
        counts = np.zeros(16, dtype=np.int64)
        counts[3] = 2
        counts[7] = 1
        expected = 2 * table.table[3].astype(np.int64) + table.table[7].astype(np.int64)
        assert np.array_equal(table.weighted_sum(counts), expected)

    def test_weighted_sum_shape_check(self, memory):
        table = ChunkLookupTable(memory, 2)
        with pytest.raises(ValueError):
            table.weighted_sum(np.zeros(5, dtype=np.int64))

    def test_element_range_bounded_by_chunk_size(self, memory):
        # Each element is a sum of r bipolar values: |element| <= r.
        table = ChunkLookupTable(memory, 3)
        assert table.table.max() <= 3
        assert table.table.min() >= -3

    def test_too_many_rows_rejected(self):
        big_memory = LevelItemMemory(16, 64, rng=1)
        with pytest.raises(ValueError):
            ChunkLookupTable(big_memory, 6)  # 16^6 rows

    def test_memory_bytes(self, memory):
        table = ChunkLookupTable(memory, 2)
        assert table.memory_bytes() == 16 * 256 * 2  # int16

    def test_address_order_is_big_endian(self, memory):
        table = ChunkLookupTable(memory, 2)
        levels = address_to_levels(np.array([6]), 4, 2)  # 6 = 1*4 + 2
        assert levels.tolist() == [[1, 2]]
        direct = memory[1].astype(np.int64) + np.roll(memory[2], 1).astype(np.int64)
        assert np.array_equal(table.table[6].astype(np.int64), direct)

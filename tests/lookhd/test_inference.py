"""Exact-equivalence suite: fused lookup-domain inference vs reference.

The fused engine must be indistinguishable from the hypervector-domain
pipeline: identical argmax on every sample, scores equal to float
rounding, across quantization levels, grouping modes, decorrelation, and
through retraining-driven invalidation.
"""

import warnings

import numpy as np
import pytest

from repro.datasets.synthetic import SyntheticSpec, make_synthetic_classification
from repro.lookhd.classifier import LookHDClassifier, LookHDConfig
from repro.lookhd.inference import FusedFallbackWarning, FusedInferenceEngine


@pytest.fixture(scope="module")
def dataset():
    spec = SyntheticSpec(
        n_features=30,
        n_classes=13,
        n_train=260,
        n_test=130,
        class_separation=2.5,
        seed=11,
    )
    return make_synthetic_classification(spec, name="equivalence")


def fit(dataset, retrain_iterations=0, **overrides):
    defaults = dict(dim=384, levels=4, chunk_size=5, seed=5)
    defaults.update(overrides)
    clf = LookHDClassifier(LookHDConfig(**defaults))
    clf.fit(dataset.train_features, dataset.train_labels, retrain_iterations=retrain_iterations)
    return clf


def reference_scores(clf, features):
    encoded = clf.encoder.encode_reference(features)
    if clf.compressed_model is not None:
        return clf.compressed_model.scores_reference(encoded)
    return clf.class_model.scores(encoded)


class TestFusedEquivalence:
    @pytest.mark.parametrize("levels", [2, 4])
    @pytest.mark.parametrize("group_size", [None, 12])
    @pytest.mark.parametrize("decorrelate", [True, False])
    def test_predictions_and_scores_match_reference(
        self, dataset, levels, group_size, decorrelate
    ):
        clf = fit(dataset, levels=levels, group_size=group_size, decorrelate=decorrelate)
        engine = clf.fused_engine()
        assert engine.enabled
        fused = clf.predict(dataset.test_features)
        reference = clf.predict_reference(dataset.test_features)
        assert np.array_equal(fused, reference)
        assert np.allclose(
            engine.scores(dataset.test_features),
            reference_scores(clf, dataset.test_features),
        )

    def test_uncompressed_class_model_path(self, dataset):
        clf = fit(dataset, compress=False)
        assert clf.compressed_model is None
        fused = clf.predict(dataset.test_features)
        assert np.array_equal(fused, clf.predict_reference(dataset.test_features))
        assert np.allclose(
            clf.fused_engine().scores(dataset.test_features),
            reference_scores(clf, dataset.test_features),
        )

    def test_matches_after_fit_with_retraining(self, dataset):
        clf = fit(dataset, retrain_iterations=4)
        assert np.array_equal(
            clf.predict(dataset.test_features),
            clf.predict_reference(dataset.test_features),
        )

    def test_retrain_update_invalidates_score_table(self, dataset):
        clf = fit(dataset)
        engine = clf.fused_engine()
        # Build the table, then mutate the model behind the engine's back.
        scores_before = engine.scores(dataset.test_features)
        query = clf.encode(dataset.train_features[0])
        for _ in range(25):
            clf.compressed_model.retrain_update(1, 0, query)
        scores_after = engine.scores(dataset.test_features)
        # A stale table would have returned the identical scores.
        assert not np.allclose(scores_before, scores_after)
        assert np.allclose(
            scores_after, reference_scores(clf, dataset.test_features)
        )
        assert np.array_equal(
            clf.predict(dataset.test_features),
            clf.predict_reference(dataset.test_features),
        )

    def test_version_counter_tracks_mutations(self, dataset):
        clf = fit(dataset)
        model = clf.compressed_model
        version = model.version
        model.retrain_update(0, 1, np.ones(model.dim))
        assert model.version == version + 1
        model.mark_dirty()
        assert model.version == version + 2

    def test_single_sample_predict_returns_int64_scalar(self, dataset):
        clf = fit(dataset)
        assert isinstance(clf.predict(dataset.test_features[0]), np.int64)
        assert clf.predict(dataset.test_features[0]) == clf.predict_reference(
            dataset.test_features[0]
        )

    def test_budget_fallback_matches(self, dataset):
        fused = fit(dataset)
        fallback = fit(dataset, score_table_budget_bytes=1)
        assert not fallback.fused_engine().enabled
        with pytest.warns(FusedFallbackWarning):
            predictions = fallback.predict(dataset.test_features)
        assert np.array_equal(fused.predict(dataset.test_features), predictions)

    def test_disabled_engine_raises_on_direct_use(self, dataset):
        clf = fit(dataset, score_table_budget_bytes=1)
        with pytest.warns(FusedFallbackWarning):
            with pytest.raises(RuntimeError, match="predict"):
                clf.fused_engine().scores(dataset.test_features)

    def test_engine_rejects_dimension_mismatch(self, dataset):
        clf = fit(dataset)
        other = fit(dataset, dim=128)
        with pytest.raises(ValueError):
            FusedInferenceEngine(clf.encoder, other.compressed_model)

    def test_score_table_shape_and_reuse(self, dataset):
        clf = fit(dataset)
        engine = clf.fused_engine()
        table = engine.score_table
        assert table.shape == (
            clf.encoder.layout.n_chunks,
            clf.encoder.lookup_table.n_rows,
            clf.n_classes,
        )
        # Untouched model: the exact same table object is served again.
        assert engine.score_table is table
        assert engine.memory_bytes() == table.nbytes

    def test_unbound_positions_ablation_matches(self, dataset):
        clf = fit(dataset)
        clf.encoder.bind_positions = False
        clf.encoder._prebound = None  # rebuilt lazily; ablation path
        engine = FusedInferenceEngine(clf.encoder, clf.compressed_model)
        assert np.allclose(
            engine.scores(dataset.test_features),
            reference_scores(clf, dataset.test_features),
        )


class TestFallbackObservability:
    def test_enabled_engine_reports_no_fallback(self, dataset):
        clf = fit(dataset)
        engine = clf.fused_engine()
        assert engine.enabled
        with warnings.catch_warnings():
            warnings.simplefilter("error", FusedFallbackWarning)
            clf.predict(dataset.test_features)
        assert engine.fallback_reason is None

    def test_fallback_sets_queryable_reason(self, dataset):
        clf = fit(dataset, score_table_budget_bytes=1)
        engine = clf.fused_engine()
        assert engine.fallback_reason is None  # nothing served yet
        with pytest.warns(FusedFallbackWarning):
            clf.predict(dataset.test_features)
        reason = engine.fallback_reason
        assert reason is not None
        # Actionable: states the footprint, the geometry, and the budget.
        assert "bytes" in reason and "budget is 1" in reason
        assert f"k={clf.n_classes}" in reason

    def test_fallback_warns_exactly_once(self, dataset):
        clf = fit(dataset, score_table_budget_bytes=1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            clf.predict(dataset.test_features)
            clf.predict(dataset.test_features)
            clf.score(dataset.test_features, dataset.test_labels)
        fallback_warnings = [
            w for w in caught if issubclass(w.category, FusedFallbackWarning)
        ]
        assert len(fallback_warnings) == 1

    def test_fallback_predictions_still_exact(self, dataset):
        clf = fit(dataset, score_table_budget_bytes=1)
        with pytest.warns(FusedFallbackWarning):
            predictions = clf.predict(dataset.test_features)
        assert np.array_equal(predictions, clf.predict_reference(dataset.test_features))


class TestEncoderFastPath:
    def test_encode_bit_identical_prebound(self, dataset):
        clf = fit(dataset)
        assert clf.encoder.prebound_table is not None
        assert np.array_equal(
            clf.encoder.encode(dataset.test_features),
            clf.encoder.encode_reference(dataset.test_features),
        )

    def test_encode_bit_identical_over_budget(self, dataset):
        from repro.lookhd import encoder as encoder_module

        clf = fit(dataset)
        # Shrink the budget and reset the lazy cache: the fused fallback
        # (bind-on-the-fly, no (N, m, D) intermediate) must stay bit-exact.
        clf.encoder.prebind_budget_bytes = 0
        clf.encoder._prebound = encoder_module._UNSET
        assert clf.encoder.prebound_table is None
        assert np.array_equal(
            clf.encoder.encode(dataset.test_features),
            clf.encoder.encode_reference(dataset.test_features),
        )

    def test_encode_many_preallocated_matches(self, dataset):
        clf = fit(dataset)
        batch = dataset.test_features
        out = clf.encoder.encode_many(batch, batch_size=17)
        assert out.shape == (batch.shape[0], clf.encoder.dim)
        assert np.array_equal(out, clf.encoder.encode_reference(batch))

    def test_compressed_scores_match_group_loop(self, dataset):
        clf = fit(dataset, group_size=4)
        encoded = clf.encoder.encode(dataset.test_features)
        assert np.allclose(
            clf.compressed_model.scores(encoded),
            clf.compressed_model.scores_reference(encoded),
        )

import numpy as np
import pytest

from repro.lookhd.classifier import LookHDClassifier, LookHDConfig
from repro.lookhd.online import OnlineLookHD


@pytest.fixture
def encoder(small_dataset):
    clf = LookHDClassifier(LookHDConfig(dim=512, levels=4, chunk_size=4, seed=3))
    clf.fit(small_dataset.train_features[:10], small_dataset.train_labels[:10])
    return clf.encoder


class TestOnlineLookHD:
    def test_single_pass_learns(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        online.partial_fit(small_dataset.train_features, small_dataset.train_labels)
        assert online.score(small_dataset.test_features, small_dataset.test_labels) > 0.85

    def test_adaptive_weighting_downweights_known_samples(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        sample = small_dataset.train_features[:1]
        label = small_dataset.train_labels[:1]
        online.partial_fit(sample, label)
        norm_after_first = np.linalg.norm(online._model[label[0]])
        online.partial_fit(sample, label)
        norm_after_second = np.linalg.norm(online._model[label[0]])
        # The second presentation of an already-learned sample adds far
        # less than the first (weight 1 - similarity).
        first_growth = norm_after_first
        second_growth = norm_after_second - norm_after_first
        assert second_growth < 0.2 * first_growth

    def test_incremental_batches(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        for start in range(0, small_dataset.n_train, 40):
            online.partial_fit(
                small_dataset.train_features[start : start + 40],
                small_dataset.train_labels[start : start + 40],
            )
        assert online.samples_seen == small_dataset.n_train
        assert online.score(small_dataset.test_features, small_dataset.test_labels) > 0.85

    def test_compressed_snapshot(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        online.partial_fit(small_dataset.train_features, small_dataset.train_labels)
        compressed = online.compressed()
        queries = encoder.encode(small_dataset.test_features)
        predictions = np.atleast_1d(compressed.predict(queries))
        assert np.mean(predictions == small_dataset.test_labels) > 0.8

    def test_label_out_of_range_rejected(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, 2)
        with pytest.raises(ValueError):
            online.partial_fit(small_dataset.train_features[:3], np.array([0, 1, 5]))

    def test_bad_learning_rate_rejected(self, encoder):
        with pytest.raises(ValueError):
            OnlineLookHD(encoder, 2, learning_rate=0.0)

    def test_single_sample_predict(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        online.partial_fit(small_dataset.train_features, small_dataset.train_labels)
        assert isinstance(
            online.predict(small_dataset.test_features[0]), (int, np.integer)
        )


class TestInputHardening:
    """Regression tests for the PR-2 hardening gap: OnlineLookHD was the
    one public fit/predict surface without check_finite/check_labels."""

    def test_nan_batch_raises_and_leaves_model_untouched(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        online.partial_fit(small_dataset.train_features[:20], small_dataset.train_labels[:20])
        model_before = online._model.copy()
        seen_before = online.samples_seen
        poisoned = small_dataset.train_features[:8].copy()
        poisoned[3, 5] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            online.partial_fit(poisoned, small_dataset.train_labels[:8])
        assert np.array_equal(online._model, model_before)
        assert online.samples_seen == seen_before

    def test_inf_batch_raises(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        bad = small_dataset.train_features[:4].copy()
        bad[0, 0] = np.inf
        with pytest.raises(ValueError, match="non-finite"):
            online.partial_fit(bad, small_dataset.train_labels[:4])

    def test_predict_rejects_nan(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        online.partial_fit(small_dataset.train_features[:20], small_dataset.train_labels[:20])
        query = small_dataset.test_features[:3].copy()
        query[1, 2] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            online.predict(query)

    def test_misaligned_labels_rejected(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        with pytest.raises(ValueError, match="align"):
            online.partial_fit(
                small_dataset.train_features[:5], small_dataset.train_labels[:4]
            )

    def test_fractional_labels_rejected(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        with pytest.raises(ValueError):
            online.partial_fit(small_dataset.train_features[:2], np.array([0.5, 1.0]))


class TestDegenerateStates:
    def test_untrained_class_model_is_all_zero(self, encoder):
        online = OnlineLookHD(encoder, 3)
        model = online.class_model()
        assert model.class_vectors.shape == (3, encoder.dim)
        assert model.class_vectors.dtype == np.int64
        assert not model.class_vectors.any()

    def test_untrained_snapshot_round_trip_after_training(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        assert not online.class_model().class_vectors.any()  # untrained: zeros
        online.partial_fit(small_dataset.train_features, small_dataset.train_labels)
        snapshot = online.class_model()
        # ~3 significant digits survive the integer scaling: the snapshot
        # model must agree with the live learner on (nearly) every query.
        encoded = encoder.encode(small_dataset.test_features)
        snapshot_predictions = np.atleast_1d(snapshot.predict(encoded))
        live_predictions = np.atleast_1d(online.predict(small_dataset.test_features))
        assert np.mean(snapshot_predictions == live_predictions) > 0.98

    def test_empty_batch_predict_returns_empty_array(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        online.partial_fit(small_dataset.train_features[:20], small_dataset.train_labels[:20])
        empty = np.empty((0, small_dataset.train_features.shape[1]))
        predictions = online.predict(empty)
        assert isinstance(predictions, np.ndarray)
        assert predictions.shape == (0,)

    def test_empty_partial_fit_rejected(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        empty = np.empty((0, small_dataset.train_features.shape[1]))
        with pytest.raises(ValueError):
            online.partial_fit(empty, np.empty((0,), dtype=np.int64))


class TestBatchParity:
    def test_single_sample_matches_batch_predictions(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        online.partial_fit(small_dataset.train_features, small_dataset.train_labels)
        queries = small_dataset.test_features[:10]
        batch_predictions = online.predict(queries)
        singles = [online.predict(queries[i]) for i in range(queries.shape[0])]
        assert np.array_equal(batch_predictions, np.asarray(singles))


class TestBatchAtomicity:
    """Regression: a mid-batch failure must leave the learner untouched.

    Before the copy-commit fix, per-sample updates landed directly on
    ``self._model``, so an exception on sample N of a batch published the
    first N-1 updates — with ``samples_seen`` and the snapshot version out
    of sync with the weights.
    """

    def test_mid_batch_failure_leaves_all_state_untouched(
        self, small_dataset, encoder, monkeypatch
    ):
        import repro.lookhd.online as online_module

        online = OnlineLookHD(encoder, small_dataset.n_classes)
        online.partial_fit(small_dataset.train_features[:20], small_dataset.train_labels[:20])
        snapshot = online.class_model()
        model_before = online._model.copy()
        seen_before = online.samples_seen
        version_before = snapshot.version
        vectors_before = snapshot.class_vectors.copy()
        window_before = list(online._window)

        real = online_module.cosine_similarity
        calls = {"n": 0}

        def explode_on_fifth(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 5:
                raise RuntimeError("injected mid-batch fault")
            return real(*args, **kwargs)

        monkeypatch.setattr(online_module, "cosine_similarity", explode_on_fifth)
        with pytest.raises(RuntimeError, match="injected"):
            online.partial_fit(
                small_dataset.train_features[20:32], small_dataset.train_labels[20:32]
            )

        # Nothing committed: weights, counter, window, snapshot all intact.
        assert np.array_equal(online._model, model_before)
        assert online.samples_seen == seen_before
        assert list(online._window) == window_before
        assert snapshot.version == version_before
        assert np.array_equal(snapshot.class_vectors, vectors_before)

    def test_failed_batch_can_be_retried(self, small_dataset, encoder, monkeypatch):
        import repro.lookhd.online as online_module

        online = OnlineLookHD(encoder, small_dataset.n_classes)
        real = online_module.cosine_similarity
        state = {"fail": True}

        def flaky(*args, **kwargs):
            if state["fail"]:
                state["fail"] = False
                raise RuntimeError("transient")
            return real(*args, **kwargs)

        monkeypatch.setattr(online_module, "cosine_similarity", flaky)
        with pytest.raises(RuntimeError):
            online.partial_fit(small_dataset.train_features[:8], small_dataset.train_labels[:8])
        online.partial_fit(small_dataset.train_features[:8], small_dataset.train_labels[:8])
        assert online.samples_seen == 8


class TestScoreValidation:
    """Regression: score() must validate labels before running predict."""

    def test_misaligned_score_labels_rejected(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        online.partial_fit(small_dataset.train_features[:20], small_dataset.train_labels[:20])
        with pytest.raises(ValueError, match="align"):
            online.score(small_dataset.test_features[:5], small_dataset.test_labels[:4])

    def test_column_vector_labels_rejected(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        online.partial_fit(small_dataset.train_features[:20], small_dataset.train_labels[:20])
        with pytest.raises(ValueError):
            online.score(
                small_dataset.test_features[:5],
                small_dataset.test_labels[:5].reshape(-1, 1),
            )

    def test_single_sample_score(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        online.partial_fit(small_dataset.train_features, small_dataset.train_labels)
        accuracy = online.score(
            small_dataset.test_features[:1], small_dataset.test_labels[:1]
        )
        assert accuracy in (0.0, 1.0)


class TestDriftAdaptation:
    def test_decay_validation(self, encoder):
        with pytest.raises(ValueError, match="decay"):
            OnlineLookHD(encoder, 2, decay=0.0)
        with pytest.raises(ValueError, match="decay"):
            OnlineLookHD(encoder, 2, decay=1.0001)
        with pytest.raises(ValueError):
            OnlineLookHD(encoder, 2, window=0)

    def test_decay_one_matches_legacy_behaviour(self, small_dataset, encoder):
        stationary = OnlineLookHD(encoder, small_dataset.n_classes)
        explicit = OnlineLookHD(encoder, small_dataset.n_classes, decay=1.0)
        stationary.partial_fit(small_dataset.train_features, small_dataset.train_labels)
        explicit.partial_fit(small_dataset.train_features, small_dataset.train_labels)
        assert np.array_equal(stationary._model, explicit._model)

    def test_decay_downweights_old_evidence(self, small_dataset, encoder):
        decayed = OnlineLookHD(encoder, small_dataset.n_classes, decay=0.9)
        stationary = OnlineLookHD(encoder, small_dataset.n_classes)
        decayed.partial_fit(small_dataset.train_features, small_dataset.train_labels)
        stationary.partial_fit(small_dataset.train_features, small_dataset.train_labels)
        # After N samples the first sample's contribution is scaled by
        # decay^(N-1) in the decayed learner, untouched in the stationary
        # one — the two models must genuinely differ.
        assert not np.array_equal(decayed._model, stationary._model)
        # And the decayed learner still learns the (stationary) problem.
        assert decayed.score(small_dataset.test_features, small_dataset.test_labels) > 0.7

    def test_drift_stats_window(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes, window=16)
        empty = online.drift_stats()
        assert empty["window_accuracy"] is None
        assert empty["window_filled"] == 0
        assert empty["window"] == 16
        online.partial_fit(small_dataset.train_features[:10], small_dataset.train_labels[:10])
        partial = online.drift_stats()
        assert partial["window_filled"] == 10
        assert 0.0 <= partial["window_accuracy"] <= 1.0
        online.partial_fit(small_dataset.train_features[10:40], small_dataset.train_labels[10:40])
        full = online.drift_stats()
        assert full["window_filled"] == 16  # bounded by maxlen
        assert full["samples_seen"] == 40

    def test_prequential_window_scores_before_update(self, small_dataset, encoder):
        # The very first sample is graded by the untrained (all-zero)
        # model: argmax over all-zero similarities answers 0 regardless.
        online = OnlineLookHD(encoder, small_dataset.n_classes, window=8)
        features = small_dataset.train_features[:1]
        label_nonzero = np.array([2])
        online.partial_fit(features, label_nonzero)
        stats = online.drift_stats()
        assert stats["window_accuracy"] == 0.0  # scored before the update

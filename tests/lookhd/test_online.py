import numpy as np
import pytest

from repro.lookhd.classifier import LookHDClassifier, LookHDConfig
from repro.lookhd.online import OnlineLookHD


@pytest.fixture
def encoder(small_dataset):
    clf = LookHDClassifier(LookHDConfig(dim=512, levels=4, chunk_size=4, seed=3))
    clf.fit(small_dataset.train_features[:10], small_dataset.train_labels[:10])
    return clf.encoder


class TestOnlineLookHD:
    def test_single_pass_learns(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        online.partial_fit(small_dataset.train_features, small_dataset.train_labels)
        assert online.score(small_dataset.test_features, small_dataset.test_labels) > 0.85

    def test_adaptive_weighting_downweights_known_samples(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        sample = small_dataset.train_features[:1]
        label = small_dataset.train_labels[:1]
        online.partial_fit(sample, label)
        norm_after_first = np.linalg.norm(online._model[label[0]])
        online.partial_fit(sample, label)
        norm_after_second = np.linalg.norm(online._model[label[0]])
        # The second presentation of an already-learned sample adds far
        # less than the first (weight 1 - similarity).
        first_growth = norm_after_first
        second_growth = norm_after_second - norm_after_first
        assert second_growth < 0.2 * first_growth

    def test_incremental_batches(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        for start in range(0, small_dataset.n_train, 40):
            online.partial_fit(
                small_dataset.train_features[start : start + 40],
                small_dataset.train_labels[start : start + 40],
            )
        assert online.samples_seen == small_dataset.n_train
        assert online.score(small_dataset.test_features, small_dataset.test_labels) > 0.85

    def test_compressed_snapshot(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        online.partial_fit(small_dataset.train_features, small_dataset.train_labels)
        compressed = online.compressed()
        queries = encoder.encode(small_dataset.test_features)
        predictions = np.atleast_1d(compressed.predict(queries))
        assert np.mean(predictions == small_dataset.test_labels) > 0.8

    def test_label_out_of_range_rejected(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, 2)
        with pytest.raises(ValueError):
            online.partial_fit(small_dataset.train_features[:3], np.array([0, 1, 5]))

    def test_bad_learning_rate_rejected(self, encoder):
        with pytest.raises(ValueError):
            OnlineLookHD(encoder, 2, learning_rate=0.0)

    def test_single_sample_predict(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        online.partial_fit(small_dataset.train_features, small_dataset.train_labels)
        assert isinstance(
            online.predict(small_dataset.test_features[0]), (int, np.integer)
        )


class TestInputHardening:
    """Regression tests for the PR-2 hardening gap: OnlineLookHD was the
    one public fit/predict surface without check_finite/check_labels."""

    def test_nan_batch_raises_and_leaves_model_untouched(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        online.partial_fit(small_dataset.train_features[:20], small_dataset.train_labels[:20])
        model_before = online._model.copy()
        seen_before = online.samples_seen
        poisoned = small_dataset.train_features[:8].copy()
        poisoned[3, 5] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            online.partial_fit(poisoned, small_dataset.train_labels[:8])
        assert np.array_equal(online._model, model_before)
        assert online.samples_seen == seen_before

    def test_inf_batch_raises(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        bad = small_dataset.train_features[:4].copy()
        bad[0, 0] = np.inf
        with pytest.raises(ValueError, match="non-finite"):
            online.partial_fit(bad, small_dataset.train_labels[:4])

    def test_predict_rejects_nan(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        online.partial_fit(small_dataset.train_features[:20], small_dataset.train_labels[:20])
        query = small_dataset.test_features[:3].copy()
        query[1, 2] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            online.predict(query)

    def test_misaligned_labels_rejected(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        with pytest.raises(ValueError, match="align"):
            online.partial_fit(
                small_dataset.train_features[:5], small_dataset.train_labels[:4]
            )

    def test_fractional_labels_rejected(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        with pytest.raises(ValueError):
            online.partial_fit(small_dataset.train_features[:2], np.array([0.5, 1.0]))


class TestDegenerateStates:
    def test_untrained_class_model_is_all_zero(self, encoder):
        online = OnlineLookHD(encoder, 3)
        model = online.class_model()
        assert model.class_vectors.shape == (3, encoder.dim)
        assert model.class_vectors.dtype == np.int64
        assert not model.class_vectors.any()

    def test_untrained_snapshot_round_trip_after_training(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        assert not online.class_model().class_vectors.any()  # untrained: zeros
        online.partial_fit(small_dataset.train_features, small_dataset.train_labels)
        snapshot = online.class_model()
        # ~3 significant digits survive the integer scaling: the snapshot
        # model must agree with the live learner on (nearly) every query.
        encoded = encoder.encode(small_dataset.test_features)
        snapshot_predictions = np.atleast_1d(snapshot.predict(encoded))
        live_predictions = np.atleast_1d(online.predict(small_dataset.test_features))
        assert np.mean(snapshot_predictions == live_predictions) > 0.98

    def test_empty_batch_predict_returns_empty_array(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        online.partial_fit(small_dataset.train_features[:20], small_dataset.train_labels[:20])
        empty = np.empty((0, small_dataset.train_features.shape[1]))
        predictions = online.predict(empty)
        assert isinstance(predictions, np.ndarray)
        assert predictions.shape == (0,)

    def test_empty_partial_fit_rejected(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        empty = np.empty((0, small_dataset.train_features.shape[1]))
        with pytest.raises(ValueError):
            online.partial_fit(empty, np.empty((0,), dtype=np.int64))


class TestBatchParity:
    def test_single_sample_matches_batch_predictions(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        online.partial_fit(small_dataset.train_features, small_dataset.train_labels)
        queries = small_dataset.test_features[:10]
        batch_predictions = online.predict(queries)
        singles = [online.predict(queries[i]) for i in range(queries.shape[0])]
        assert np.array_equal(batch_predictions, np.asarray(singles))

import numpy as np
import pytest

from repro.lookhd.classifier import LookHDClassifier, LookHDConfig
from repro.lookhd.online import OnlineLookHD


@pytest.fixture
def encoder(small_dataset):
    clf = LookHDClassifier(LookHDConfig(dim=512, levels=4, chunk_size=4, seed=3))
    clf.fit(small_dataset.train_features[:10], small_dataset.train_labels[:10])
    return clf.encoder


class TestOnlineLookHD:
    def test_single_pass_learns(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        online.partial_fit(small_dataset.train_features, small_dataset.train_labels)
        assert online.score(small_dataset.test_features, small_dataset.test_labels) > 0.85

    def test_adaptive_weighting_downweights_known_samples(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        sample = small_dataset.train_features[:1]
        label = small_dataset.train_labels[:1]
        online.partial_fit(sample, label)
        norm_after_first = np.linalg.norm(online._model[label[0]])
        online.partial_fit(sample, label)
        norm_after_second = np.linalg.norm(online._model[label[0]])
        # The second presentation of an already-learned sample adds far
        # less than the first (weight 1 - similarity).
        first_growth = norm_after_first
        second_growth = norm_after_second - norm_after_first
        assert second_growth < 0.2 * first_growth

    def test_incremental_batches(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        for start in range(0, small_dataset.n_train, 40):
            online.partial_fit(
                small_dataset.train_features[start : start + 40],
                small_dataset.train_labels[start : start + 40],
            )
        assert online.samples_seen == small_dataset.n_train
        assert online.score(small_dataset.test_features, small_dataset.test_labels) > 0.85

    def test_compressed_snapshot(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        online.partial_fit(small_dataset.train_features, small_dataset.train_labels)
        compressed = online.compressed()
        queries = encoder.encode(small_dataset.test_features)
        predictions = np.atleast_1d(compressed.predict(queries))
        assert np.mean(predictions == small_dataset.test_labels) > 0.8

    def test_label_out_of_range_rejected(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, 2)
        with pytest.raises(ValueError):
            online.partial_fit(small_dataset.train_features[:3], np.array([0, 1, 5]))

    def test_bad_learning_rate_rejected(self, encoder):
        with pytest.raises(ValueError):
            OnlineLookHD(encoder, 2, learning_rate=0.0)

    def test_single_sample_predict(self, small_dataset, encoder):
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        online.partial_fit(small_dataset.train_features, small_dataset.train_labels)
        assert isinstance(
            online.predict(small_dataset.test_features[0]), (int, np.integer)
        )

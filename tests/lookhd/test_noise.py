import numpy as np

from repro.hdc.model import ClassModel
from repro.lookhd.compression import CompressedModel
from repro.lookhd.noise import (
    class_cosine_spread,
    compression_noise_report,
    query_cosine_distribution,
)


def correlated_model(k, dim=2000, seed=0, correlation=0.9):
    rng = np.random.default_rng(seed)
    shared = rng.normal(size=dim)
    model = ClassModel(k, dim)
    for index in range(k):
        vector = np.sqrt(correlation) * shared + np.sqrt(1 - correlation) * rng.normal(size=dim)
        model.class_vectors[index] = np.round(vector * 500).astype(np.int64)
    return model


class TestCompressionNoiseReport:
    def test_noise_grows_with_classes(self):
        # Eq. 5: more folded classes -> more cross-talk terms.
        ratios = []
        for k in (2, 8, 24):
            model = correlated_model(k, seed=k)
            compressed = CompressedModel(model, group_size=None)
            queries = np.random.default_rng(k).normal(size=(100, 2000))
            report = compression_noise_report(
                compressed, compressed.prepared_classes, queries
            )
            ratios.append(report.noise_to_signal)
        assert ratios[0] < ratios[1] < ratios[2]

    def test_grouping_reduces_noise(self):
        model = correlated_model(24, seed=1)
        queries = np.random.default_rng(2).normal(size=(100, 2000))
        single = CompressedModel(model, group_size=None)
        grouped = CompressedModel(model, group_size=6)
        noise_single = compression_noise_report(
            single, single.prepared_classes, queries
        ).noise_to_signal
        noise_grouped = compression_noise_report(
            grouped, grouped.prepared_classes, queries
        ).noise_to_signal
        assert noise_grouped < noise_single

    def test_group_size_one_is_noiseless(self):
        model = correlated_model(4, seed=3)
        compressed = CompressedModel(model, group_size=1)
        queries = np.random.default_rng(4).normal(size=(50, 2000))
        report = compression_noise_report(compressed, compressed.prepared_classes, queries)
        assert report.noise_to_signal < 1e-9
        assert report.rank_flip_rate == 0.0

    def test_report_fields_finite(self):
        model = correlated_model(6, seed=5)
        compressed = CompressedModel(model)
        queries = np.random.default_rng(6).normal(size=(10, 2000))
        report = compression_noise_report(compressed, compressed.prepared_classes, queries)
        assert np.isfinite(report.mean_signal)
        assert np.isfinite(report.mean_noise)
        assert 0.0 <= report.rank_flip_rate <= 1.0


class TestCosineSpreads:
    def test_correlated_classes_are_concentrated(self):
        model = correlated_model(6, seed=7, correlation=0.95)
        spread = class_cosine_spread(model.class_vectors)
        assert spread.min() > 0.85  # the Fig. 8 pathology

    def test_decorrelation_widens_spread(self):
        from repro.hdc.similarity import normalize_rows
        from repro.lookhd.compression import decorrelate_classes

        model = correlated_model(6, seed=8, correlation=0.95)
        original = class_cosine_spread(model.class_vectors)
        residual = decorrelate_classes(normalize_rows(model.class_vectors))
        widened = class_cosine_spread(residual)
        assert (widened.max() - widened.min()) > (original.max() - original.min())

    def test_query_distribution_shape(self):
        model = correlated_model(4, seed=9)
        queries = np.random.default_rng(10).normal(size=(25, 2000))
        out = query_cosine_distribution(model.class_vectors, queries)
        assert out.shape == (100,)
        assert np.all(np.abs(out) <= 1.0 + 1e-9)

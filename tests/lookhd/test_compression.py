import numpy as np
import pytest

from repro.hdc.model import ClassModel
from repro.hdc.similarity import normalize_rows
from repro.lookhd.compression import CompressedModel, decorrelate_classes


def make_class_model(k=4, dim=2000, seed=0, correlation=0.9):
    """Correlated integer class vectors, as HDC training produces."""
    rng = np.random.default_rng(seed)
    shared = rng.normal(size=dim)
    model = ClassModel(k, dim)
    for index in range(k):
        private = rng.normal(size=dim)
        vector = np.sqrt(correlation) * shared + np.sqrt(1 - correlation) * private
        model.class_vectors[index] = np.round(vector * 500).astype(np.int64)
    return model


class TestDecorrelateClasses:
    def test_reduces_norms(self):
        model = make_class_model()
        prepared = normalize_rows(model.class_vectors)
        residual = decorrelate_classes(prepared)
        assert np.linalg.norm(residual, axis=1).max() < 0.7

    def test_preserves_score_rankings(self):
        # Decorrelation shifts every per-query score by a near-constant
        # offset, so argmax rankings survive.
        model = make_class_model(k=6, seed=1)
        prepared = normalize_rows(model.class_vectors)
        residual = decorrelate_classes(prepared)
        rng = np.random.default_rng(2)
        queries = prepared[rng.integers(0, 6, size=50)] + 0.2 * rng.normal(size=(50, 2000))
        before = np.argmax(queries @ prepared.T, axis=1)
        after = np.argmax(queries @ residual.T, axis=1)
        assert np.mean(before == after) > 0.9

    def test_zero_matrix_unchanged(self):
        out = decorrelate_classes(np.zeros((3, 8)))
        assert np.all(out == 0)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            decorrelate_classes(np.zeros(8))

    def test_input_not_mutated(self):
        matrix = np.ones((2, 4))
        decorrelate_classes(matrix)
        assert np.all(matrix == 1)


class TestCompressedModel:
    def test_single_group_by_default_for_small_k(self):
        compressed = CompressedModel(make_class_model(k=4), group_size=None)
        assert compressed.n_groups == 1

    def test_group_partitioning(self):
        compressed = CompressedModel(make_class_model(k=26), group_size=12)
        assert compressed.n_groups == 3

    def test_scores_shape(self):
        compressed = CompressedModel(make_class_model(k=4))
        out = compressed.scores(np.random.default_rng(0).normal(size=(7, 2000)))
        assert out.shape == (7, 4)

    def test_scores_rank_like_exact_dot_products(self):
        # On queries that carry class structure (as encoded HDC queries
        # do), the compressed scores preserve the exact argmax.
        model = make_class_model(k=4, seed=3)
        compressed = CompressedModel(model)
        rng = np.random.default_rng(4)
        labels = rng.integers(0, 4, size=50)
        queries = normalize_rows(model.class_vectors)[labels]
        queries = queries + (0.3 / np.sqrt(2000)) * rng.normal(size=(50, 2000))
        exact_rank = np.argmax(queries @ compressed.prepared_classes.T, axis=1)
        approx_rank = np.argmax(compressed.scores(queries), axis=1)
        assert np.mean(exact_rank == approx_rank) > 0.9

    def test_predictions_match_uncompressed_on_clean_queries(self):
        model = make_class_model(k=6, seed=5)
        compressed = CompressedModel(model)
        rng = np.random.default_rng(6)
        labels = rng.integers(0, 6, size=100)
        queries = normalize_rows(model.class_vectors)[labels] + (
            0.3 / np.sqrt(2000)
        ) * rng.normal(size=(100, 2000))
        predictions = compressed.predict(queries)
        assert np.mean(predictions == labels) > 0.95

    def test_group_size_one_is_exact(self):
        # One class per group: keys bind single classes, scoring reduces to
        # the plain dot product (up to float rounding).
        model = make_class_model(k=3, seed=7)
        compressed = CompressedModel(model, group_size=1)
        rng = np.random.default_rng(8)
        queries = rng.normal(size=(10, 2000))
        exact = queries @ compressed.prepared_classes.T
        assert np.allclose(compressed.scores(queries), exact)

    def test_model_size_and_compression_ratio(self):
        compressed = CompressedModel(make_class_model(k=26), group_size=12)
        assert compressed.model_size_bytes(4) == 3 * 2000 * 4
        assert compressed.compression_ratio() == pytest.approx(26 / 3)

    def test_multiplications_per_query(self):
        compressed = CompressedModel(make_class_model(k=26), group_size=12)
        assert compressed.multiplications_per_query() == 3 * 2000

    def test_single_query_returns_int(self):
        compressed = CompressedModel(make_class_model(k=4))
        assert isinstance(compressed.predict(np.zeros(2000) + 1.0), np.int64)

    def test_retrain_update_moves_decision(self):
        model = make_class_model(k=2, seed=9)
        compressed = CompressedModel(model)
        rng = np.random.default_rng(10)
        query = rng.normal(size=2000)
        before = compressed.scores(query)
        for _ in range(30):
            compressed.retrain_update(0, 1, query)
        after = compressed.scores(query)
        assert (after[0] - after[1]) > (before[0] - before[1])

    def test_retrain_update_bad_class_rejected(self):
        compressed = CompressedModel(make_class_model(k=2))
        with pytest.raises(ValueError):
            compressed.retrain_update(0, 2, np.zeros(2000))

    def test_dimension_mismatch_rejected(self):
        compressed = CompressedModel(make_class_model(k=2))
        with pytest.raises(ValueError):
            compressed.scores(np.zeros((1, 100)))

    def test_deterministic_given_seed(self):
        a = CompressedModel(make_class_model(), seed=11)
        b = CompressedModel(make_class_model(), seed=11)
        assert np.array_equal(a.compressed, b.compressed)

    def test_learning_rate_shrinks_with_classes(self):
        few = CompressedModel(make_class_model(k=2, seed=12))
        many = CompressedModel(make_class_model(k=32, seed=12), group_size=12)
        assert many.learning_rate < few.learning_rate

import numpy as np
import pytest

from repro.hdc.item_memory import LevelItemMemory
from repro.lookhd.chunking import ChunkLayout
from repro.lookhd.encoder import LookupEncoder
from repro.lookhd.lookup_table import ChunkLookupTable
from repro.lookhd.trainer import LookHDTrainer
from repro.quantization.equalized import EqualizedQuantizer


@pytest.fixture
def encoder():
    rng = np.random.default_rng(0)
    quantizer = EqualizedQuantizer(4).fit(rng.random(2000))
    memory = LevelItemMemory(4, 128, rng=0)
    table = ChunkLookupTable(memory, 3)
    return LookupEncoder(quantizer, table, ChunkLayout(9, 3), seed=1)


class TestLookHDTrainer:
    def test_counter_training_equals_direct_bundling(self, encoder):
        # THE core identity of Fig. 6: the counter-materialised class
        # hypervectors are bit-identical to bundling per-sample encodings.
        rng = np.random.default_rng(1)
        features = rng.random((60, 9))
        labels = rng.integers(0, 3, size=60)
        trainer = LookHDTrainer(encoder, 3)
        trainer.observe(features, labels)
        model = trainer.build_model()

        encoded = encoder.encode(features)
        for class_index in range(3):
            direct = encoded[labels == class_index].sum(axis=0)
            assert np.array_equal(model.class_vectors[class_index], direct)

    def test_streaming_observation_equals_single_batch(self, encoder):
        rng = np.random.default_rng(2)
        features = rng.random((40, 9))
        labels = rng.integers(0, 2, size=40)
        whole = LookHDTrainer(encoder, 2)
        whole.observe(features, labels)
        streamed = LookHDTrainer(encoder, 2)
        for start in range(0, 40, 13):
            streamed.observe(features[start : start + 13], labels[start : start + 13])
        assert np.array_equal(
            whole.build_model().class_vectors, streamed.build_model().class_vectors
        )

    def test_samples_seen(self, encoder):
        trainer = LookHDTrainer(encoder, 2)
        trainer.observe(np.random.default_rng(3).random((10, 9)), np.array([0] * 7 + [1] * 3))
        assert trainer.samples_seen().tolist() == [7, 3]

    def test_label_out_of_range_rejected(self, encoder):
        trainer = LookHDTrainer(encoder, 2)
        with pytest.raises(ValueError):
            trainer.observe(np.random.default_rng(4).random((2, 9)), np.array([0, 2]))

    def test_empty_class_yields_zero_vector(self, encoder):
        trainer = LookHDTrainer(encoder, 3)
        trainer.observe(np.random.default_rng(5).random((5, 9)), np.zeros(5, dtype=int))
        model = trainer.build_model()
        assert np.all(model.class_vectors[2] == 0)

    def test_counter_memory_bytes(self, encoder):
        trainer = LookHDTrainer(encoder, 2)
        assert trainer.counter_memory_bytes(4) == 2 * 3 * 64 * 4

    def test_unbound_positions_supported(self):
        rng = np.random.default_rng(6)
        quantizer = EqualizedQuantizer(2).fit(rng.random(500))
        memory = LevelItemMemory(2, 64, rng=7)
        table = ChunkLookupTable(memory, 2)
        encoder = LookupEncoder(
            quantizer, table, ChunkLayout(4, 2), seed=8, bind_positions=False
        )
        features = rng.random((20, 4))
        labels = rng.integers(0, 2, size=20)
        trainer = LookHDTrainer(encoder, 2)
        trainer.observe(features, labels)
        model = trainer.build_model()
        encoded = encoder.encode(features)
        direct = np.stack([encoded[labels == c].sum(axis=0) for c in range(2)])
        assert np.array_equal(model.class_vectors, direct)

    def test_invalid_class_count_rejected(self, encoder):
        with pytest.raises(ValueError):
            LookHDTrainer(encoder, 0)

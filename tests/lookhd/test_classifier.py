import numpy as np
import pytest

from repro.lookhd.classifier import EXACT_GROUP_SIZE, LookHDClassifier, LookHDConfig


class TestLookHDConfig:
    def test_defaults(self):
        config = LookHDConfig()
        assert config.dim == 2_000
        assert config.levels == 4
        assert config.chunk_size == 5
        assert config.compress
        assert config.group_size == EXACT_GROUP_SIZE

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            LookHDConfig(dim=0)
        with pytest.raises(ValueError):
            LookHDConfig(levels=-1)


class TestLookHDClassifier:
    def test_learns_separable_data(self, small_dataset, fitted_lookhd):
        accuracy = fitted_lookhd.score(
            small_dataset.test_features, small_dataset.test_labels
        )
        assert accuracy > 0.85

    def test_compressed_close_to_uncompressed(self, small_dataset):
        compressed = LookHDClassifier(LookHDConfig(dim=512, levels=4, chunk_size=4))
        compressed.fit(small_dataset.train_features, small_dataset.train_labels)
        plain = LookHDClassifier(
            LookHDConfig(dim=512, levels=4, chunk_size=4, compress=False)
        )
        plain.fit(small_dataset.train_features, small_dataset.train_labels)
        a = compressed.score(small_dataset.test_features, small_dataset.test_labels)
        b = plain.score(small_dataset.test_features, small_dataset.test_labels)
        assert abs(a - b) < 0.1

    def test_compressed_model_is_smaller(self, small_dataset, fitted_lookhd):
        plain = LookHDClassifier(
            LookHDConfig(dim=512, levels=4, chunk_size=4, compress=False)
        )
        plain.fit(small_dataset.train_features, small_dataset.train_labels)
        assert fitted_lookhd.model_size_bytes() < plain.model_size_bytes()
        assert (
            plain.model_size_bytes() / fitted_lookhd.model_size_bytes()
            == small_dataset.n_classes
        )

    def test_retraining_improves_or_holds(self, small_dataset):
        plain = LookHDClassifier(LookHDConfig(dim=512, levels=4, chunk_size=4))
        plain.fit(small_dataset.train_features, small_dataset.train_labels)
        base = plain.score(small_dataset.test_features, small_dataset.test_labels)
        retrained = LookHDClassifier(LookHDConfig(dim=512, levels=4, chunk_size=4))
        retrained.fit(
            small_dataset.train_features, small_dataset.train_labels, retrain_iterations=5
        )
        assert retrained.score(
            small_dataset.test_features, small_dataset.test_labels
        ) >= base - 0.05

    def test_chunk_size_clamped_to_feature_count(self):
        rng = np.random.default_rng(0)
        features = rng.random((50, 3))  # fewer features than chunk_size=5
        labels = rng.integers(0, 2, size=50)
        clf = LookHDClassifier(LookHDConfig(dim=128, levels=2, chunk_size=5))
        clf.fit(features, labels)
        assert clf.encoder.layout.chunk_size == 3

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LookHDClassifier().predict(np.zeros(4))

    def test_single_sample_predict_is_scalar(self, small_dataset, fitted_lookhd):
        out = fitted_lookhd.predict(small_dataset.test_features[0])
        assert isinstance(out, (int, np.integer))

    def test_uncompressed_retraining_path(self, small_dataset):
        clf = LookHDClassifier(
            LookHDConfig(dim=512, levels=4, chunk_size=4, compress=False)
        )
        trace = clf.fit(
            small_dataset.train_features, small_dataset.train_labels, retrain_iterations=3
        )
        assert trace.iterations >= 1
        assert clf.score(small_dataset.test_features, small_dataset.test_labels) > 0.8

    def test_validation_trace(self, small_dataset):
        clf = LookHDClassifier(LookHDConfig(dim=512, levels=4, chunk_size=4))
        trace = clf.fit(
            small_dataset.train_features,
            small_dataset.train_labels,
            retrain_iterations=2,
            validation=(small_dataset.test_features, small_dataset.test_labels),
        )
        assert len(trace.validation_accuracy) == trace.iterations

    def test_lookup_table_bytes(self, fitted_lookhd):
        # q=4, r=4 -> 256 rows of 512 int16 elements.
        assert fitted_lookhd.lookup_table_bytes() == 256 * 512 * 2

    def test_deterministic_given_seed(self, small_dataset):
        scores = []
        for _ in range(2):
            clf = LookHDClassifier(LookHDConfig(dim=256, levels=4, chunk_size=4, seed=42))
            clf.fit(small_dataset.train_features, small_dataset.train_labels)
            scores.append(clf.score(small_dataset.test_features, small_dataset.test_labels))
        assert scores[0] == scores[1]

    def test_group_size_none_single_hypervector(self, small_dataset):
        clf = LookHDClassifier(
            LookHDConfig(dim=512, levels=4, chunk_size=4, group_size=None)
        )
        clf.fit(small_dataset.train_features, small_dataset.train_labels)
        assert clf.compressed_model.n_groups == 1

    def test_quantizer_mismatch_rejected(self):
        from repro.quantization.linear import LinearQuantizer

        with pytest.raises(ValueError):
            LookHDClassifier(LookHDConfig(levels=4), quantizer=LinearQuantizer(8))

    def test_misaligned_labels_rejected(self, small_dataset):
        clf = LookHDClassifier(LookHDConfig(dim=128, levels=2, chunk_size=4))
        with pytest.raises(ValueError):
            clf.fit(small_dataset.train_features, small_dataset.train_labels[:-1])

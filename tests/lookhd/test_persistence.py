import numpy as np
import pytest

from repro.lookhd.classifier import LookHDClassifier, LookHDConfig
from repro.lookhd.persistence import load_classifier, save_classifier


class TestPersistenceRoundTrip:
    def test_predictions_bit_identical(self, small_dataset, fitted_lookhd, tmp_path):
        path = save_classifier(fitted_lookhd, tmp_path / "model.npz")
        restored = load_classifier(path)
        original = np.atleast_1d(fitted_lookhd.predict(small_dataset.test_features))
        reloaded = np.atleast_1d(restored.predict(small_dataset.test_features))
        assert np.array_equal(original, reloaded)

    def test_scores_identical(self, small_dataset, fitted_lookhd, tmp_path):
        path = save_classifier(fitted_lookhd, tmp_path / "model.npz")
        restored = load_classifier(path)
        queries = fitted_lookhd.encode(small_dataset.test_features[:10])
        assert np.allclose(
            fitted_lookhd.compressed_model.scores(queries),
            restored.compressed_model.scores(queries),
        )

    def test_uncompressed_round_trip(self, small_dataset, tmp_path):
        clf = LookHDClassifier(
            LookHDConfig(dim=256, levels=4, chunk_size=4, compress=False)
        )
        clf.fit(small_dataset.train_features, small_dataset.train_labels)
        path = save_classifier(clf, tmp_path / "plain.npz")
        restored = load_classifier(path)
        assert restored.compressed_model is None
        assert np.array_equal(
            np.atleast_1d(clf.predict(small_dataset.test_features)),
            np.atleast_1d(restored.predict(small_dataset.test_features)),
        )

    def test_restored_model_can_keep_retraining(self, small_dataset, fitted_lookhd, tmp_path):
        from repro.lookhd.retraining import retrain_compressed

        path = save_classifier(fitted_lookhd, tmp_path / "model.npz")
        restored = load_classifier(path)
        encoded = restored.encoder.encode_many(small_dataset.train_features)
        trace = retrain_compressed(
            restored.compressed_model, encoded, small_dataset.train_labels, iterations=2
        )
        assert trace.iterations >= 1
        assert restored.score(small_dataset.test_features, small_dataset.test_labels) > 0.8

    def test_unfitted_classifier_rejected(self, tmp_path):
        with pytest.raises(RuntimeError):
            save_classifier(LookHDClassifier(), tmp_path / "x.npz")

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_classifier(tmp_path / "absent.npz")

    def test_config_round_trip(self, fitted_lookhd, tmp_path):
        path = save_classifier(fitted_lookhd, tmp_path / "model.npz")
        restored = load_classifier(path)
        assert restored.config.dim == fitted_lookhd.config.dim
        assert restored.config.levels == fitted_lookhd.config.levels
        assert restored.n_classes == fitted_lookhd.n_classes

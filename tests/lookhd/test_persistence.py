import zipfile

import numpy as np
import pytest

from repro.lookhd.classifier import LookHDClassifier, LookHDConfig
from repro.lookhd.persistence import ArtifactError, load_classifier, save_classifier


class TestPersistenceRoundTrip:
    def test_predictions_bit_identical(self, small_dataset, fitted_lookhd, tmp_path):
        path = save_classifier(fitted_lookhd, tmp_path / "model.npz")
        restored = load_classifier(path)
        original = np.atleast_1d(fitted_lookhd.predict(small_dataset.test_features))
        reloaded = np.atleast_1d(restored.predict(small_dataset.test_features))
        assert np.array_equal(original, reloaded)

    def test_scores_identical(self, small_dataset, fitted_lookhd, tmp_path):
        path = save_classifier(fitted_lookhd, tmp_path / "model.npz")
        restored = load_classifier(path)
        queries = fitted_lookhd.encode(small_dataset.test_features[:10])
        assert np.allclose(
            fitted_lookhd.compressed_model.scores(queries),
            restored.compressed_model.scores(queries),
        )

    def test_uncompressed_round_trip(self, small_dataset, tmp_path):
        clf = LookHDClassifier(
            LookHDConfig(dim=256, levels=4, chunk_size=4, compress=False)
        )
        clf.fit(small_dataset.train_features, small_dataset.train_labels)
        path = save_classifier(clf, tmp_path / "plain.npz")
        restored = load_classifier(path)
        assert restored.compressed_model is None
        assert np.array_equal(
            np.atleast_1d(clf.predict(small_dataset.test_features)),
            np.atleast_1d(restored.predict(small_dataset.test_features)),
        )

    def test_restored_model_can_keep_retraining(self, small_dataset, fitted_lookhd, tmp_path):
        from repro.lookhd.retraining import retrain_compressed

        path = save_classifier(fitted_lookhd, tmp_path / "model.npz")
        restored = load_classifier(path)
        encoded = restored.encoder.encode_many(small_dataset.train_features)
        trace = retrain_compressed(
            restored.compressed_model, encoded, small_dataset.train_labels, iterations=2
        )
        assert trace.iterations >= 1
        assert restored.score(small_dataset.test_features, small_dataset.test_labels) > 0.8

    def test_unfitted_classifier_rejected(self, tmp_path):
        with pytest.raises(RuntimeError):
            save_classifier(LookHDClassifier(), tmp_path / "x.npz")

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_classifier(tmp_path / "absent.npz")

    def test_config_round_trip(self, fitted_lookhd, tmp_path):
        path = save_classifier(fitted_lookhd, tmp_path / "model.npz")
        restored = load_classifier(path)
        assert restored.config.dim == fitted_lookhd.config.dim
        assert restored.config.levels == fitted_lookhd.config.levels
        assert restored.n_classes == fitted_lookhd.n_classes

    @pytest.mark.parametrize("compress", [True, False])
    @pytest.mark.parametrize("decorrelate", [True, False])
    @pytest.mark.parametrize("group_size", [None, 3, 12])
    def test_round_trip_bit_exact_across_config_grid(
        self, small_dataset, tmp_path, compress, decorrelate, group_size
    ):
        """Every (compress × decorrelate × group_size) cell must reload to a
        model that predicts bit-for-bit identically."""
        clf = LookHDClassifier(
            LookHDConfig(
                dim=256,
                levels=4,
                chunk_size=4,
                compress=compress,
                decorrelate=decorrelate,
                group_size=group_size,
                seed=9,
            )
        )
        clf.fit(small_dataset.train_features, small_dataset.train_labels)
        path = save_classifier(clf, tmp_path / "grid.npz")
        restored = load_classifier(path)
        assert np.array_equal(
            np.atleast_1d(clf.predict(small_dataset.test_features)),
            np.atleast_1d(restored.predict(small_dataset.test_features)),
        )
        if compress:
            queries = clf.encoder.encode_many(small_dataset.test_features[:16])
            assert np.allclose(
                clf.compressed_model.scores(queries),
                restored.compressed_model.scores(queries),
            )


class TestSavePath:
    def test_returned_path_exists(self, fitted_lookhd, tmp_path):
        path = save_classifier(fitted_lookhd, tmp_path / "model.npz")
        assert path.exists()

    def test_suffixless_path_returns_actual_npz(self, fitted_lookhd, tmp_path):
        """Regression: numpy appends .npz; the returned path must be the
        file that is actually on disk."""
        path = save_classifier(fitted_lookhd, tmp_path / "model")
        assert path == tmp_path / "model.npz"
        assert path.exists()
        load_classifier(path)

    def test_odd_suffixes_still_return_existing_file(self, fitted_lookhd, tmp_path):
        for name in ("model.v2", "model.", ".hidden"):
            path = save_classifier(fitted_lookhd, tmp_path / name)
            assert path.exists(), name
            load_classifier(path)


def _corrupt_member_bytes(path, member_suffix, offset=None):
    """Flip one byte inside a stored array of the .npz (a zip archive)."""
    with zipfile.ZipFile(path) as archive:
        names = [n for n in archive.namelist() if n.endswith(member_suffix)]
        assert names, f"no member matching {member_suffix}"
        contents = {n: archive.read(n) for n in archive.namelist()}
    target = names[0]
    raw = bytearray(contents[target])
    position = len(raw) // 2 if offset is None else offset
    raw[position] ^= 0xFF
    contents[target] = bytes(raw)
    with zipfile.ZipFile(path, "w") as archive:
        for name, data in contents.items():
            archive.writestr(name, data)


class TestPersistenceTelemetry:
    def test_round_trip_records_timers_and_checksums(self, fitted_lookhd, tmp_path):
        from repro import telemetry

        with telemetry.enabled() as registry:
            path = save_classifier(fitted_lookhd, tmp_path / "telemetry.npz")
            load_classifier(path)
            snap = registry.snapshot()
        assert snap["timers"]["persistence.save_seconds"]["count"] == 1
        assert snap["timers"]["persistence.load_seconds"]["count"] == 1
        checksummed = snap["counters"]["persistence.arrays_checksummed"]
        assert checksummed > 0
        # Every checksummed array is verified at load.
        assert snap["counters"]["persistence.checksums_verified"] == checksummed
        assert "persistence.checksum_failures" not in snap["counters"]


class TestCorruptionDetection:
    def test_flipped_bytes_in_class_vectors_rejected(self, fitted_lookhd, tmp_path):
        path = save_classifier(fitted_lookhd, tmp_path / "model.npz")
        _corrupt_member_bytes(path, "class_vectors.npy")
        with pytest.raises(ArtifactError, match="checksum"):
            load_classifier(path)

    def test_flipped_bytes_in_lookup_memory_rejected(self, fitted_lookhd, tmp_path):
        path = save_classifier(fitted_lookhd, tmp_path / "model.npz")
        _corrupt_member_bytes(path, "level_vectors.npy")
        with pytest.raises(ArtifactError, match="corrupted"):
            load_classifier(path)

    def test_unknown_format_version_rejected(self, fitted_lookhd, tmp_path):
        path = save_classifier(fitted_lookhd, tmp_path / "model.npz")
        with np.load(path) as archive:
            payload = {name: archive[name] for name in archive.files}
        payload["format_version"] = np.int64(99)
        np.savez_compressed(path, **payload)
        with pytest.raises(ArtifactError, match="format version 99"):
            load_classifier(path)

    def test_missing_required_key_rejected(self, fitted_lookhd, tmp_path):
        path = save_classifier(fitted_lookhd, tmp_path / "model.npz")
        with np.load(path) as archive:
            payload = {name: archive[name] for name in archive.files}
        del payload["position_vectors"]
        np.savez_compressed(path, **payload)
        with pytest.raises(ArtifactError, match="position_vectors"):
            load_classifier(path)

    def test_truncated_compressed_payload_rejected(self, fitted_lookhd, tmp_path):
        path = save_classifier(fitted_lookhd, tmp_path / "model.npz")
        with np.load(path) as archive:
            payload = {name: archive[name] for name in archive.files}
        del payload["keys"]
        np.savez_compressed(path, **payload)
        with pytest.raises(ArtifactError, match="keys"):
            load_classifier(path)

    def test_non_npz_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(ArtifactError, match="not a readable"):
            load_classifier(path)

    def test_geometry_mismatch_rejected(self, fitted_lookhd, tmp_path):
        path = save_classifier(fitted_lookhd, tmp_path / "model.npz")
        with np.load(path) as archive:
            payload = {name: archive[name] for name in archive.files}
        # Tamper consistently: shrink the declared dim but keep the arrays,
        # and drop the checksum manifest as an attacker-with-partial-care
        # would; version 1 has no checksums, so shape checks must catch it.
        payload["format_version"] = np.int64(1)
        payload.pop("checksums")
        payload["dim"] = np.int64(64)
        np.savez_compressed(path, **payload)
        with pytest.raises(ArtifactError, match="geometry"):
            load_classifier(path)

    def test_version1_artifact_without_checksums_loads(
        self, small_dataset, fitted_lookhd, tmp_path
    ):
        """Backwards compatibility: pre-checksum artifacts stay loadable."""
        path = save_classifier(fitted_lookhd, tmp_path / "model.npz")
        with np.load(path) as archive:
            payload = {name: archive[name] for name in archive.files}
        payload["format_version"] = np.int64(1)
        payload.pop("checksums")
        np.savez_compressed(path, **payload)
        restored = load_classifier(path)
        assert np.array_equal(
            np.atleast_1d(restored.predict(small_dataset.test_features)),
            np.atleast_1d(fitted_lookhd.predict(small_dataset.test_features)),
        )

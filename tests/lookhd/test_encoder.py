import numpy as np
import pytest

from repro.hdc.item_memory import LevelItemMemory
from repro.lookhd.chunking import ChunkLayout
from repro.lookhd.encoder import LookupEncoder
from repro.lookhd.lookup_table import ChunkLookupTable
from repro.quantization.equalized import EqualizedQuantizer


def make_encoder(n_features=12, chunk=4, levels=4, dim=256, seed=0, bind_positions=True):
    rng = np.random.default_rng(seed)
    quantizer = EqualizedQuantizer(levels).fit(rng.random(1000))
    memory = LevelItemMemory(levels, dim, rng=seed)
    table = ChunkLookupTable(memory, chunk)
    layout = ChunkLayout(n_features, chunk)
    return LookupEncoder(quantizer, table, layout, seed=seed, bind_positions=bind_positions)


class TestLookupEncoder:
    def test_output_shape(self):
        encoder = make_encoder()
        assert encoder.encode(np.random.default_rng(0).random(12)).shape == (256,)

    def test_batch_shape(self):
        encoder = make_encoder()
        out = encoder.encode(np.random.default_rng(1).random((5, 12)))
        assert out.shape == (5, 256)

    def test_matches_equation_three(self):
        # H = sum_i P_i * T[address_i], bit-exact.
        encoder = make_encoder()
        sample = np.random.default_rng(2).random(12)
        addresses = encoder.addresses(sample)[0]
        expected = np.zeros(256, dtype=np.int64)
        for chunk_index, address in enumerate(addresses):
            chunk_hv = encoder.lookup_table.table[address].astype(np.int64)
            expected += chunk_hv * encoder.position_memory[chunk_index].astype(np.int64)
        assert np.array_equal(encoder.encode(sample), expected)

    def test_chunk_order_matters_with_positions(self):
        encoder = make_encoder(n_features=8, chunk=4)
        rng = np.random.default_rng(3)
        first, second = rng.random(4), rng.random(4)
        a = encoder.encode(np.concatenate([first, second]))
        b = encoder.encode(np.concatenate([second, first]))
        assert not np.array_equal(a, b)

    def test_chunk_order_ignored_without_positions(self):
        # The naive aggregation the paper rejects: swapping whole chunks
        # encodes identically.
        encoder = make_encoder(n_features=8, chunk=4, bind_positions=False)
        rng = np.random.default_rng(4)
        first, second = rng.random(4), rng.random(4)
        a = encoder.encode(np.concatenate([first, second]))
        b = encoder.encode(np.concatenate([second, first]))
        assert np.array_equal(a, b)

    def test_addresses_in_range(self):
        encoder = make_encoder()
        addresses = encoder.addresses(np.random.default_rng(5).random((20, 12)))
        assert addresses.min() >= 0
        assert addresses.max() < len(encoder.lookup_table)

    def test_uneven_features_padded(self):
        encoder = make_encoder(n_features=10, chunk=4)
        assert encoder.layout.n_chunks == 3
        assert encoder.encode(np.random.default_rng(6).random(10)).shape == (256,)

    def test_wrong_width_rejected(self):
        encoder = make_encoder(n_features=12)
        with pytest.raises(ValueError):
            encoder.encode(np.zeros(13))

    def test_q_mismatch_rejected(self):
        rng = np.random.default_rng(7)
        quantizer = EqualizedQuantizer(8).fit(rng.random(100))
        memory = LevelItemMemory(4, 64, rng=0)
        table = ChunkLookupTable(memory, 2)
        with pytest.raises(ValueError):
            LookupEncoder(quantizer, table, ChunkLayout(4, 2))

    def test_encode_many_matches_encode(self):
        encoder = make_encoder()
        batch = np.random.default_rng(8).random((30, 12))
        assert np.array_equal(
            encoder.encode_many(batch, batch_size=7), encoder.encode(batch)
        )

    def test_deterministic_across_instances(self):
        a = make_encoder(seed=5)
        b = make_encoder(seed=5)
        sample = np.random.default_rng(9).random(12)
        assert np.array_equal(a.encode(sample), b.encode(sample))

    def test_single_sample_matches_batch_row(self):
        # 1-D parity: encode(x) must be bit-identical to encode(X)[i] on
        # both the pre-bound and the raw-table (bind-on-the-fly) paths.
        batch = np.random.default_rng(10).random((6, 12))
        for prebind_budget in (2**30, 0):
            encoder = make_encoder()
            encoder.prebind_budget_bytes = prebind_budget
            encoded_batch = encoder.encode(batch)
            for index in range(batch.shape[0]):
                single = encoder.encode(batch[index])
                assert single.shape == (encoder.dim,)
                assert np.array_equal(single, encoded_batch[index])


class TestEncoderPickling:
    def test_pickle_round_trip_encodes_identically(self):
        # The parallel trainer broadcasts the fitted encoder to worker
        # processes by pickling it; the copy must encode bit-identically.
        import pickle

        encoder = make_encoder()
        batch = np.random.default_rng(11).random((5, 12))
        expected = encoder.encode(batch)
        clone = pickle.loads(pickle.dumps(encoder))
        assert np.array_equal(clone.encode(batch), expected)
        assert np.array_equal(clone.addresses(batch), encoder.addresses(batch))

    def test_pickle_drops_prebound_cache(self):
        # The lazy pre-bound table is a cache keyed by a module-level
        # sentinel; it must not travel (the sentinel's identity does not
        # survive pickling) and must rebuild on demand in the clone.
        import pickle

        encoder = make_encoder()
        batch = np.random.default_rng(12).random((4, 12))
        encoder.encode(batch)  # builds the pre-bound cache when in budget
        clone = pickle.loads(pickle.dumps(encoder))
        assert clone.prebound_table is None or isinstance(clone.prebound_table, np.ndarray)
        assert np.array_equal(clone.encode(batch), encoder.encode(batch))


class TestPreboundBackendInvalidation:
    def test_backend_switch_invalidates_prebound_cache(self):
        # The pre-bound table is backend-derived state: a kernel backend
        # switch must rebuild it (same version-counter idiom as the
        # model/codebook caches), and encodes must stay bit-identical
        # across the switch.
        from repro import kernels

        mode = kernels.current_mode()
        try:
            encoder = make_encoder()
            batch = np.random.default_rng(13).random((6, 12))
            expected = encoder.encode(batch)
            first = encoder.prebound_table
            assert first is not None
            assert encoder.prebound_table is first  # cached while backend stable
            kernels.set_backend("numpy")
            second = encoder.prebound_table
            assert second is not first  # switch invalidated the cache
            assert np.array_equal(second, first)  # ...but the bits agree
            assert np.array_equal(encoder.encode(batch), expected)
            kernels.set_backend("auto")
            assert np.array_equal(encoder.encode(batch), expected)
        finally:
            kernels.set_backend(mode)

    def test_version_tracked_across_pickle(self):
        import pickle

        from repro import kernels

        mode = kernels.current_mode()
        try:
            encoder = make_encoder()
            blob = pickle.dumps(encoder)
            kernels.set_backend("numpy")  # version moves while pickled
            clone = pickle.loads(blob)
            # The clone re-reads the current version on unpickle, so its
            # first prebound build is already against the new backend.
            assert clone._prebound_backend_version == kernels.backend_version()
            assert np.array_equal(
                clone.encode(np.random.default_rng(14).random((3, 12))),
                encoder.encode(np.random.default_rng(14).random((3, 12))),
            )
        finally:
            kernels.set_backend(mode)

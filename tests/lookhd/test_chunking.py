import numpy as np
import pytest

from repro.lookhd.chunking import ChunkLayout


class TestChunkLayout:
    def test_even_split(self):
        layout = ChunkLayout(20, 5)
        assert layout.n_chunks == 4
        assert layout.padding == 0

    def test_uneven_split_pads(self):
        layout = ChunkLayout(22, 5)
        assert layout.n_chunks == 5
        assert layout.padding == 3
        assert layout.padded_features == 25

    def test_chunk_larger_than_features_rejected(self):
        with pytest.raises(ValueError):
            ChunkLayout(4, 5)

    def test_single_chunk(self):
        layout = ChunkLayout(5, 5)
        assert layout.n_chunks == 1

    def test_split_levels_shape(self):
        layout = ChunkLayout(10, 5)
        out = layout.split_levels(np.zeros((7, 10), dtype=int))
        assert out.shape == (7, 2, 5)

    def test_split_levels_values_preserved(self):
        layout = ChunkLayout(6, 3)
        levels = np.arange(6)[np.newaxis, :]
        out = layout.split_levels(levels)
        assert out[0, 0].tolist() == [0, 1, 2]
        assert out[0, 1].tolist() == [3, 4, 5]

    def test_padding_uses_pad_level(self):
        layout = ChunkLayout(4, 3)
        out = layout.split_levels(np.ones((1, 4), dtype=int), pad_level=9)
        assert out[0, 1].tolist() == [1, 9, 9]

    def test_padding_is_identical_across_samples(self):
        # Padding must contribute the same offset to every sample so it
        # never changes similarity rankings.
        layout = ChunkLayout(4, 3)
        a = layout.split_levels(np.zeros((1, 4), dtype=int))
        b = layout.split_levels(np.ones((1, 4), dtype=int))
        assert a[0, 1, 1:].tolist() == b[0, 1, 1:].tolist()

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            ChunkLayout(10, 5).split_levels(np.zeros((2, 9), dtype=int))

    def test_describe_mentions_geometry(self):
        text = ChunkLayout(22, 5).describe()
        assert "22" in text and "5" in text

"""Integration tests: the full LookHD pipeline across module boundaries."""

import numpy as np
import pytest

from repro.datasets.registry import APPLICATIONS, load_application
from repro.datasets.synthetic import SyntheticSpec, make_synthetic_classification
from repro.hdc.classifier import BaselineHDClassifier
from repro.lookhd.classifier import LookHDClassifier, LookHDConfig


class TestPaperApplications:
    """Accuracy on the calibrated stand-in datasets at reduced budgets."""

    @pytest.mark.parametrize("name", ["activity", "physical", "face", "extra"])
    def test_lookhd_tracks_paper_accuracy(self, name):
        app = APPLICATIONS[name]
        data = load_application(name, train_limit=400)
        clf = LookHDClassifier(LookHDConfig(dim=1024, levels=app.lookhd_q))
        clf.fit(data.train_features, data.train_labels, retrain_iterations=4)
        accuracy = clf.score(data.test_features, data.test_labels)
        assert accuracy > app.paper_lookhd_accuracy_d2000 - 0.12

    def test_speech_with_exact_mode_groups(self):
        # k = 26 > 12 -> three compressed hypervectors, modest loss.
        data = load_application("speech", train_limit=500)
        clf = LookHDClassifier(LookHDConfig(dim=2000, levels=4))
        clf.fit(data.train_features, data.train_labels, retrain_iterations=3)
        assert clf.compressed_model.n_groups == 3
        assert clf.score(data.test_features, data.test_labels) > 0.8


class TestLookHDVsBaseline:
    def test_equalized_low_q_matches_linear_high_q(self):
        # Fig. 4's punchline: LookHD with q=4 equalized >= baseline q=16
        # linear on skewed data.
        data = load_application("activity", train_limit=300)
        look = LookHDClassifier(LookHDConfig(dim=1024, levels=4))
        look.fit(data.train_features, data.train_labels, retrain_iterations=3)
        base = BaselineHDClassifier(dim=1024, levels=16)
        base.fit(data.train_features, data.train_labels, retrain_iterations=3)
        assert look.score(data.test_features, data.test_labels) >= (
            base.score(data.test_features, data.test_labels) - 0.03
        )

    def test_model_size_reduction_matches_group_math(self):
        data = load_application("physical", train_limit=200)
        look = LookHDClassifier(LookHDConfig(dim=512, levels=2))
        look.fit(data.train_features, data.train_labels)
        base = BaselineHDClassifier(dim=512, levels=8)
        base.fit(data.train_features, data.train_labels)
        # physical: k = 12 -> single compressed hypervector -> 12x smaller.
        assert base.model_size_bytes() / look.model_size_bytes() == 12


class TestScaleRobustness:
    def test_tiny_feature_count(self):
        spec = SyntheticSpec(
            n_features=2, n_classes=2, n_train=80, n_test=40,
            class_separation=4.0, informative_fraction=1.0, seed=1,
        )
        data = make_synthetic_classification(spec)
        clf = LookHDClassifier(LookHDConfig(dim=256, levels=2, chunk_size=5))
        clf.fit(data.train_features, data.train_labels)
        assert clf.score(data.test_features, data.test_labels) > 0.8

    def test_many_classes_with_grouping(self):
        spec = SyntheticSpec(
            n_features=60, n_classes=30, n_train=900, n_test=300,
            class_separation=5.0, informative_fraction=1.0, seed=2,
        )
        data = make_synthetic_classification(spec)
        clf = LookHDClassifier(LookHDConfig(dim=1024, levels=4, chunk_size=5, group_size=10))
        clf.fit(data.train_features, data.train_labels, retrain_iterations=3)
        assert clf.compressed_model.n_groups == 3
        assert clf.score(data.test_features, data.test_labels) > 0.7

    def test_single_feature_chunks(self):
        spec = SyntheticSpec(
            n_features=10, n_classes=3, n_train=150, n_test=60,
            class_separation=4.0, informative_fraction=1.0, seed=3,
        )
        data = make_synthetic_classification(spec)
        clf = LookHDClassifier(LookHDConfig(dim=512, levels=4, chunk_size=1))
        clf.fit(data.train_features, data.train_labels)
        assert clf.score(data.test_features, data.test_labels) > 0.8

    def test_streaming_training_matches_batch(self):
        # Out-of-core counter training: observing in chunks must produce
        # the identical model (and therefore identical predictions).
        data = load_application("face", train_limit=200)
        batch = LookHDClassifier(LookHDConfig(dim=512, levels=2, seed=5))
        batch.fit(data.train_features, data.train_labels)

        from repro.lookhd.trainer import LookHDTrainer

        streamed = LookHDTrainer(batch.encoder, 2)
        for start in range(0, data.n_train, 37):
            streamed.observe(
                data.train_features[start : start + 37],
                data.train_labels[start : start + 37],
            )
        model = streamed.build_model()
        assert np.array_equal(model.class_vectors, batch.class_model.class_vectors)


class TestPersistenceRoundTrip:
    def test_dataset_npz_round_trip_preserves_accuracy(self, tmp_path):
        from repro.datasets.loaders import load_npz, save_npz

        data = load_application("face", train_limit=150)
        save_npz(data, tmp_path / "face.npz")
        reloaded = load_npz(tmp_path / "face.npz")
        clf = LookHDClassifier(LookHDConfig(dim=512, levels=2, seed=9))
        clf.fit(reloaded.train_features, reloaded.train_labels)
        direct = LookHDClassifier(LookHDConfig(dim=512, levels=2, seed=9))
        direct.fit(data.train_features, data.train_labels)
        assert clf.score(reloaded.test_features, reloaded.test_labels) == pytest.approx(
            direct.score(data.test_features, data.test_labels)
        )

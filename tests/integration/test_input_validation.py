"""NaN/inf and shape rejection at every public fit/predict entry point.

A single NaN in a feature stream must fail loudly at the API boundary,
not surface downstream as a quantizer bucket of garbage or a silently
wrong class hypervector.  These tests sweep every classifier and the
quantizer front-end with NaN, +inf, and -inf payloads, plus mismatched
label shapes.
"""

import numpy as np
import pytest

from repro.baselines.mlp import MLPClassifier, MLPConfig
from repro.baselines.nearest_centroid import NearestCentroidClassifier
from repro.hdc.classifier import BaselineHDClassifier
from repro.lookhd.classifier import LookHDClassifier, LookHDConfig
from repro.quantization.equalized import EqualizedQuantizer

BAD_VALUES = (np.nan, np.inf, -np.inf)


@pytest.fixture(scope="module")
def clean_data():
    rng = np.random.default_rng(21)
    labels = rng.integers(0, 3, size=60)
    # Separable data so the happy-path sanity check is meaningful.
    features = rng.standard_normal((60, 8)) + 2.0 * labels[:, np.newaxis]
    return features, labels


def _poison(features, value):
    bad = features.copy()
    bad[7, 3] = value
    return bad


def make_lookhd():
    return LookHDClassifier(LookHDConfig(dim=128, levels=4, chunk_size=4, seed=0))


def make_baseline_hd():
    return BaselineHDClassifier(dim=128, levels=4, seed=0)


def make_centroid():
    return NearestCentroidClassifier()


def make_mlp():
    return MLPClassifier(MLPConfig(hidden_units=8, epochs=3, seed=0))


ALL_MODELS = [make_lookhd, make_baseline_hd, make_centroid, make_mlp]


class TestFitRejectsNonFinite:
    @pytest.mark.parametrize("make", ALL_MODELS)
    @pytest.mark.parametrize("value", BAD_VALUES)
    def test_fit_rejects(self, clean_data, make, value):
        features, labels = clean_data
        with pytest.raises(ValueError, match="non-finite"):
            make().fit(_poison(features, value), labels)

    @pytest.mark.parametrize("value", BAD_VALUES)
    def test_quantizer_fit_transform_rejects(self, clean_data, value):
        features, _ = clean_data
        with pytest.raises(ValueError, match="non-finite"):
            EqualizedQuantizer(4).fit_transform(_poison(features, value))

    def test_error_message_counts_bad_values(self, clean_data):
        features, labels = clean_data
        bad = features.copy()
        bad[0, 0] = np.nan
        bad[1, 1] = np.inf
        with pytest.raises(ValueError, match="2 non-finite"):
            make_lookhd().fit(bad, labels)


class TestPredictRejectsNonFinite:
    @pytest.mark.parametrize("make", ALL_MODELS)
    @pytest.mark.parametrize("value", BAD_VALUES)
    def test_predict_rejects(self, clean_data, make, value):
        features, labels = clean_data
        model = make()
        model.fit(features, labels)
        with pytest.raises(ValueError, match="non-finite"):
            model.predict(_poison(features, value))

    @pytest.mark.parametrize("value", BAD_VALUES)
    def test_quantizer_transform_rejects(self, clean_data, value):
        features, _ = clean_data
        quantizer = EqualizedQuantizer(4).fit(features)
        with pytest.raises(ValueError, match="non-finite"):
            quantizer.transform(_poison(features, value))


class TestLabelValidation:
    @pytest.mark.parametrize("make", ALL_MODELS)
    def test_rejects_misaligned_labels(self, clean_data, make):
        features, labels = clean_data
        with pytest.raises(ValueError, match="labels"):
            make().fit(features, labels[:-5])

    @pytest.mark.parametrize("make", ALL_MODELS)
    def test_rejects_2d_labels(self, clean_data, make):
        features, labels = clean_data
        with pytest.raises(ValueError, match="1-D"):
            make().fit(features, labels.reshape(-1, 1))

    @pytest.mark.parametrize("make", ALL_MODELS)
    def test_rejects_negative_labels(self, clean_data, make):
        features, labels = clean_data
        bad = labels.copy()
        bad[0] = -2
        with pytest.raises(ValueError, match="negative"):
            make().fit(features, bad)

    @pytest.mark.parametrize("make", ALL_MODELS)
    def test_rejects_fractional_float_labels(self, clean_data, make):
        features, labels = clean_data
        with pytest.raises(ValueError, match="integ"):
            make().fit(features, labels.astype(np.float64) + 0.5)

    def test_accepts_integral_float_labels(self, clean_data):
        features, labels = clean_data
        clf = make_lookhd()
        clf.fit(features, labels.astype(np.float64))
        assert clf.n_classes == int(labels.max()) + 1


class TestScoreBoundary:
    """PR-4 regressions: the predict/score boundary must reject silently
    broadcasting label shapes and non-finite single queries.

    An ``(N, 1)`` label column against ``(N,)`` predictions broadcasts
    ``predictions == labels`` to an ``(N, N)`` matrix, so ``score`` would
    return a plausible-looking wrong accuracy instead of failing."""

    @pytest.mark.parametrize("make", ALL_MODELS)
    def test_score_rejects_column_labels(self, clean_data, make):
        features, labels = clean_data
        model = make()
        model.fit(features, labels)
        with pytest.raises(ValueError, match="1-D"):
            model.score(features, labels.reshape(-1, 1))

    @pytest.mark.parametrize("make", ALL_MODELS)
    def test_score_rejects_misaligned_labels(self, clean_data, make):
        features, labels = clean_data
        model = make()
        model.fit(features, labels)
        with pytest.raises(ValueError, match="labels"):
            model.score(features, labels[:-5])

    def test_online_score_rejects_column_labels(self, clean_data):
        features, labels = clean_data
        online = _fit_online(clean_data)
        with pytest.raises(ValueError, match="1-D"):
            online.score(features, labels.reshape(-1, 1))

    @pytest.mark.parametrize("make", ALL_MODELS)
    @pytest.mark.parametrize("value", BAD_VALUES)
    def test_single_query_rejects_non_finite(self, clean_data, make, value):
        features, labels = clean_data
        model = make()
        model.fit(features, labels)
        query = features[0].copy()
        query[2] = value
        with pytest.raises(ValueError, match="non-finite"):
            model.predict(query)

    @pytest.mark.parametrize("value", BAD_VALUES)
    def test_online_single_query_rejects_non_finite(self, clean_data, value):
        features, _ = clean_data
        online = _fit_online(clean_data)
        query = features[0].copy()
        query[2] = value
        with pytest.raises(ValueError, match="non-finite"):
            online.predict(query)


def _fit_online(clean_data):
    from repro.lookhd.online import OnlineLookHD

    features, labels = clean_data
    seed_clf = make_lookhd()
    seed_clf.fit(features, labels)
    online = OnlineLookHD(seed_clf.encoder, int(labels.max()) + 1)
    online.partial_fit(features, labels)
    return online


class TestSingleQueryContract:
    """Library-wide return contract the serving layer depends on: a 1-D
    query yields an ``np.int64`` scalar, an ``(N, n)`` batch an ``(N,)``
    int64 array, an empty batch an empty int64 array."""

    @pytest.mark.parametrize("make", ALL_MODELS)
    def test_single_query_returns_int64_scalar(self, clean_data, make):
        features, labels = clean_data
        model = make()
        model.fit(features, labels)
        prediction = model.predict(features[0])
        assert isinstance(prediction, np.int64)

    @pytest.mark.parametrize("make", ALL_MODELS)
    def test_batch_returns_int64_array(self, clean_data, make):
        features, labels = clean_data
        model = make()
        model.fit(features, labels)
        predictions = model.predict(features[:5])
        assert predictions.shape == (5,)
        assert predictions.dtype == np.int64

    @pytest.mark.parametrize("make", ALL_MODELS)
    def test_empty_batch_returns_empty_int64(self, clean_data, make):
        features, labels = clean_data
        model = make()
        model.fit(features, labels)
        predictions = model.predict(features[:0])
        assert predictions.shape == (0,)
        assert predictions.dtype == np.int64

    def test_online_follows_contract(self, clean_data):
        features, _ = clean_data
        online = _fit_online(clean_data)
        assert isinstance(online.predict(features[0]), np.int64)
        batch = online.predict(features[:4])
        assert batch.shape == (4,) and batch.dtype == np.int64
        empty = online.predict(features[:0])
        assert empty.shape == (0,) and empty.dtype == np.int64


class TestShapeValidation:
    def test_lookhd_fit_rejects_1d_features(self, clean_data):
        _, labels = clean_data
        with pytest.raises(ValueError):
            make_lookhd().fit(np.zeros(60), labels)

    def test_clean_data_still_fits_everywhere(self, clean_data):
        """The validation layer must not break the happy path."""
        features, labels = clean_data
        for make in ALL_MODELS:
            model = make()
            model.fit(features, labels)
            assert model.score(features, labels) > 0.3

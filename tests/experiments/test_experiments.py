"""Smoke tests: every experiment driver runs and its headline shape holds.

Accuracy-bearing experiments run on reduced budgets (small train sets, few
dimensions) so the whole module stays fast; the full-budget numbers live
in benchmarks/ and EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.experiments import (
    fig02_breakdown,
    fig03_quantization_boundaries,
    fig04_quantization_accuracy,
    fig08_correlation,
    fig09_retraining,
    fig12_chunk_quant,
    fig13_training_efficiency,
    fig14_inference_retraining,
    fig15_scalability,
    fig16_resources,
    table01_characteristics,
    table02_dimensionality,
    table03_gpu,
    table04_mlp,
)
from repro.experiments.report import format_table


class TestReport:
    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 3.0]], title="T")
        assert "T" in text
        assert "2.500" in text

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestFig02:
    def test_encoding_dominates_training(self):
        rows = fig02_breakdown.run()
        assert len(rows) == 5
        for row in rows:
            assert row.train_encoding_share > 0.6
            assert row.train_encoding_share + row.train_update_share == pytest.approx(1.0)

    def test_search_majority_of_inference(self):
        rows = fig02_breakdown.run()
        average = np.mean([r.infer_search_share for r in rows])
        assert average > 0.5


class TestTable01:
    def test_rows_and_lookup_sizes(self):
        rows = table01_characteristics.run(dim=512, retrain_iterations=1, train_limit=150)
        assert len(rows) == 5
        speech = next(r for r in rows if r.application == "speech")
        assert round(speech.log2_lookup_rows) == 2468  # 617 * log2(16), Table I


class TestFig03:
    def test_equalized_balances_levels(self):
        report = fig03_quantization_boundaries.run()
        assert report.equalized_balance > 0.9
        assert report.linear_balance < 0.1


class TestFig04:
    def test_equalized_beats_linear_at_low_q(self):
        rows = fig04_quantization_accuracy.run(
            level_grid=(2, 4), dim=512, retrain_iterations=1, train_limit=200
        )
        low_q = rows[0]
        assert low_q.equalized_accuracy > low_q.linear_accuracy


class TestFig08:
    def test_decorrelation_widens_distribution(self):
        report = fig08_correlation.run(dim=512, train_limit=200, n_queries=100)
        assert report.decorrelated_spread > report.original_spread
        assert report.original_mean > 0.5


class TestFig09:
    def test_curves_recorded(self):
        curves = fig09_retraining.run(
            applications=("activity",), iterations=3, dim=512, train_limit=150
        )
        assert len(curves) == 1
        assert 1 <= len(curves[0].validation_accuracy) <= 3


class TestFig12:
    def test_grid_runs(self):
        points = fig12_chunk_quant.run(
            applications=("physical",),
            chunk_grid=(2, 5),
            level_grid=(2, 4),
            dim=512,
            retrain_iterations=1,
            train_limit=150,
        )
        assert len(points) == 4
        assert all(0 <= p.accuracy <= 1 for p in points)


class TestTable02:
    def test_accuracy_flat_in_dimension(self):
        rows = table02_dimensionality.run(
            dim_grid=(512, 1024),
            retrain_iterations=1,
            train_limit=150,
            applications=("activity",),
        )
        accs = list(rows[0].accuracies.values())
        assert abs(accs[0] - accs[1]) < 0.1


class TestFig13:
    def test_lookhd_always_wins_and_q2_beats_q4(self):
        rows = fig13_training_efficiency.run(level_grid=(2, 4))
        assert all(r.speedup > 1 for r in rows)
        averages = fig13_training_efficiency.averages(rows)
        for platform in ("fpga", "cpu"):
            assert averages[(platform, 2)][0] > averages[(platform, 4)][0]


class TestFig14:
    def test_inference_and_retraining_win_on_average(self):
        rows = fig14_inference_retraining.run()
        averages = fig14_inference_retraining.averages(rows)
        for key, (speed, energy) in averages.items():
            assert speed > 1.0
            assert energy > 1.0


class TestTable03:
    def test_structure_and_directions(self):
        comparisons = table03_gpu.run(dims=(2_000,))
        labels = [c.label for c in comparisons]
        assert any("GPU" in label for label in labels)
        gpu = next(c for c in comparisons if "GPU" in c.label)
        look = next(c for c in comparisons if c.label.startswith("LookHD"))
        # LookHD on FPGA beats the GPU on both speed and (vastly) energy.
        assert look.train_speedup_vs_cpu > gpu.train_speedup_vs_cpu
        assert look.infer_energy_vs_cpu > 10 * gpu.infer_energy_vs_cpu


class TestFig15:
    def test_lossless_below_twelve_then_degrades(self):
        points = fig15_scalability.run(class_grid=(4, 12, 48), dim=2000, n_queries=300)
        by_k = {p.n_classes: p for p in points}
        assert by_k[4].compressed_accuracy >= by_k[4].exact_accuracy - 0.02
        assert by_k[12].compressed_accuracy >= by_k[12].exact_accuracy - 0.03
        assert by_k[48].noise_to_signal > by_k[4].noise_to_signal

    def test_model_size_reduction_scales_with_k(self):
        points = fig15_scalability.run(class_grid=(4, 24), dim=512, n_queries=50)
        assert points[1].model_size_reduction > points[0].model_size_reduction


class TestFig16:
    def test_paper_bottlenecks(self):
        rows = fig16_resources.run()
        by_key = {(r.application, r.phase): r for r in rows}
        assert by_key[("speech", "inference")].bottleneck == "dsp"
        assert by_key[("speech", "training")].bottleneck == "fabric"
        assert by_key[("face", "inference")].bottleneck == "fabric"
        assert by_key[("face", "training")].bottleneck == "fabric"


class TestTable04:
    def test_lookhd_beats_mlp_everywhere(self):
        rows = table04_mlp.run()
        for row in rows:
            assert row.train_speedup > 1
            assert row.infer_speedup > 1
            assert row.model_size_ratio > 1


class TestMains:
    """Every driver's main() renders without error."""

    @pytest.mark.parametrize(
        "module",
        [fig02_breakdown, fig03_quantization_boundaries, fig13_training_efficiency,
         fig14_inference_retraining, fig16_resources, table03_gpu, table04_mlp],
    )
    def test_model_mains(self, module):
        assert isinstance(module.main(), str)

import numpy as np
import pytest

from repro.baselines.mlp import MLPClassifier, MLPConfig


class TestMLPConfig:
    def test_rejects_bad_learning_rate(self):
        with pytest.raises(ValueError):
            MLPConfig(learning_rate=0.0)

    def test_rejects_negative_decay(self):
        with pytest.raises(ValueError):
            MLPConfig(weight_decay=-1.0)


class TestMLPClassifier:
    def test_learns_separable_data(self, small_dataset):
        clf = MLPClassifier(MLPConfig(hidden_units=32, epochs=15, seed=0))
        clf.fit(small_dataset.train_features, small_dataset.train_labels)
        assert clf.score(small_dataset.test_features, small_dataset.test_labels) > 0.85

    def test_loss_decreases(self, small_dataset):
        clf = MLPClassifier(MLPConfig(hidden_units=32, epochs=10, seed=1))
        losses = clf.fit(small_dataset.train_features, small_dataset.train_labels)
        assert losses[-1] < losses[0]

    def test_probabilities_normalised(self, small_dataset):
        clf = MLPClassifier(MLPConfig(hidden_units=16, epochs=3, seed=2))
        clf.fit(small_dataset.train_features, small_dataset.train_labels)
        probs = clf.predict_proba(small_dataset.test_features[:5])
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs >= 0)

    def test_single_sample_predict(self, small_dataset):
        clf = MLPClassifier(MLPConfig(hidden_units=16, epochs=2, seed=3))
        clf.fit(small_dataset.train_features, small_dataset.train_labels)
        assert isinstance(clf.predict(small_dataset.test_features[0]), (int, np.integer))

    def test_parameter_count(self, small_dataset):
        clf = MLPClassifier(MLPConfig(hidden_units=16, epochs=1, seed=4))
        clf.fit(small_dataset.train_features, small_dataset.train_labels)
        n, h, k = small_dataset.n_features, 16, small_dataset.n_classes
        assert clf.parameter_count() == n * h + h + h * k + k

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MLPClassifier().predict(np.zeros(3))

    def test_deterministic_given_seed(self, small_dataset):
        scores = []
        for _ in range(2):
            clf = MLPClassifier(MLPConfig(hidden_units=16, epochs=3, seed=5))
            clf.fit(small_dataset.train_features, small_dataset.train_labels)
            scores.append(clf.score(small_dataset.test_features, small_dataset.test_labels))
        assert scores[0] == scores[1]

    def test_constant_feature_handled(self):
        rng = np.random.default_rng(6)
        features = rng.random((40, 3))
        features[:, 1] = 7.0  # zero variance
        labels = (features[:, 0] > 0.5).astype(int)
        clf = MLPClassifier(MLPConfig(hidden_units=8, epochs=10, seed=7))
        clf.fit(features, labels)
        assert np.isfinite(clf.predict_proba(features)).all()

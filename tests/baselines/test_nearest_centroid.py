import numpy as np
import pytest

from repro.baselines.nearest_centroid import NearestCentroidClassifier


class TestNearestCentroid:
    def test_perfect_on_trivial_clusters(self):
        features = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0], [5.1, 5.0]])
        labels = np.array([0, 0, 1, 1])
        clf = NearestCentroidClassifier().fit(features, labels)
        assert clf.score(features, labels) == 1.0

    def test_single_sample_predict(self):
        clf = NearestCentroidClassifier().fit(
            np.array([[0.0], [1.0]]), np.array([0, 1])
        )
        assert clf.predict(np.array([0.1])) == 0

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            NearestCentroidClassifier().predict(np.zeros(2))

    def test_empty_class_rejected(self):
        with pytest.raises(ValueError):
            NearestCentroidClassifier().fit(np.zeros((2, 2)), np.array([0, 2]))

    def test_learns_synthetic_data(self, small_dataset):
        clf = NearestCentroidClassifier().fit(
            small_dataset.train_features, small_dataset.train_labels
        )
        assert clf.score(small_dataset.test_features, small_dataset.test_labels) > 0.9

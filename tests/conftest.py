"""Shared fixtures: small, fast datasets and pre-trained classifiers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import SyntheticSpec, make_synthetic_classification
from repro.lookhd.classifier import LookHDClassifier, LookHDConfig


@pytest.fixture(scope="session")
def small_dataset():
    """A quick, well-separated 4-class problem (fixed seed)."""
    spec = SyntheticSpec(
        n_features=40,
        n_classes=4,
        n_train=240,
        n_test=120,
        class_separation=3.0,
        informative_fraction=0.6,
        label_noise=0.0,
        skew=0.8,
        seed=7,
    )
    return make_synthetic_classification(spec, name="small")


@pytest.fixture(scope="session")
def fitted_lookhd(small_dataset):
    """A LookHD classifier trained (without retraining) on small_dataset."""
    clf = LookHDClassifier(LookHDConfig(dim=512, levels=4, chunk_size=4, seed=3))
    clf.fit(small_dataset.train_features, small_dataset.train_labels)
    return clf


@pytest.fixture
def rng():
    return np.random.default_rng(0)

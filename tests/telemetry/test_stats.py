"""The ``repro stats`` workload, its schema, and the overhead gate."""

import json

import pytest

from repro.telemetry import validate_snapshot, validate_stats_payload
from repro.telemetry.stats import (
    StatsWorkload,
    measure_disabled_overhead,
    run_stats_workload,
    write_stats_file,
)

TINY = StatsWorkload(dim=128, n_features=16, n_train=120, n_test=60, seed=11)


@pytest.fixture(scope="module")
def stats_payload():
    return run_stats_workload(TINY)


class TestStatsWorkload:
    def test_payload_passes_schema(self, stats_payload):
        assert validate_stats_payload(stats_payload) is stats_payload

    def test_captures_fused_hits_and_fallback_reason(self, stats_payload):
        counters = stats_payload["telemetry"]["counters"]
        assert counters["inference.fused.queries"] > 0
        assert counters["inference.fused.fallbacks{reason=score_table_over_budget}"] >= 1

    def test_captures_both_score_table_build_triggers(self, stats_payload):
        counters = stats_payload["telemetry"]["counters"]
        assert counters["inference.score_table.builds{trigger=initial}"] >= 1
        # The workload mutates the model, so the version counter must have
        # forced a rebuild — the staleness bug class PR 1 fixed.
        assert counters["inference.score_table.builds{trigger=version_change}"] >= 1

    def test_captures_both_encoder_paths(self, stats_payload):
        counters = stats_payload["telemetry"]["counters"]
        assert counters["encoder.encode.batches{path=prebound}"] >= 1
        assert counters["encoder.encode.batches{path=raw_table}"] >= 1

    def test_captures_online_and_persistence(self, stats_payload):
        telemetry_block = stats_payload["telemetry"]
        counters = telemetry_block["counters"]
        assert counters["online.samples"] == 120
        assert (
            counters["online.updates.applied"] + counters["online.updates.skipped"]
            == counters["online.samples"]
        )
        assert counters["persistence.checksums_verified"] > 0
        assert telemetry_block["timers"]["persistence.save_seconds"]["count"] == 1
        assert telemetry_block["timers"]["persistence.load_seconds"]["count"] == 1

    def test_global_telemetry_left_disabled(self, stats_payload):
        from repro import telemetry

        assert not telemetry.is_enabled()

    def test_write_stats_file_round_trips(self, tmp_path, capsys):
        path = write_stats_file(tmp_path / "STATS.json", workload=TINY)
        payload = json.loads(path.read_text())
        validate_stats_payload(payload)
        out = capsys.readouterr().out
        assert "[stats] inference.fused.queries" in out
        assert "[stats] kernel backends:" in out

    def test_payload_surfaces_kernel_backends(self, stats_payload):
        from repro.kernels.reference import OP_NAMES

        block = stats_payload["kernels"]
        assert set(block["active"]) == set(OP_NAMES)
        assert all(isinstance(backend, str) for backend in block["active"].values())
        counters = stats_payload["telemetry"]["counters"]
        dispatches = [name for name in counters if name.startswith("kernels.dispatch{")]
        assert dispatches, "stats workload recorded no kernel dispatches"


class TestSchemaRejections:
    def test_missing_fused_counter_rejected(self, stats_payload):
        broken = json.loads(json.dumps(stats_payload))
        broken["telemetry"]["counters"] = {
            name: value
            for name, value in broken["telemetry"]["counters"].items()
            if not name.startswith("inference.fused.queries")
        }
        with pytest.raises(ValueError, match="inference.fused.queries"):
            validate_stats_payload(broken)

    def test_histogram_count_mismatch_rejected(self):
        snapshot = {
            "counters": {},
            "timers": {},
            "histograms": {
                "h": {"buckets": [1.0], "counts": [1, 0], "count": 5, "total": 0.5}
            },
        }
        with pytest.raises(ValueError, match="sum of its bucket counts"):
            validate_snapshot(snapshot)

    def test_non_int_counter_rejected(self):
        with pytest.raises(ValueError, match="must be an int"):
            validate_snapshot({"counters": {"c": 1.5}, "timers": {}, "histograms": {}})

    def test_malformed_kernels_block_rejected(self, stats_payload):
        broken = json.loads(json.dumps(stats_payload))
        broken["kernels"] = {"mode": "auto"}  # missing numba_available/active
        with pytest.raises(ValueError, match="kernels"):
            validate_stats_payload(broken)

    def test_payload_without_kernels_block_still_validates(self, stats_payload):
        legacy = json.loads(json.dumps(stats_payload))
        del legacy["kernels"]
        validate_stats_payload(legacy)


class TestOverheadGate:
    def test_measurement_shape_and_sanity(self):
        # CI-sized: small repeats, small workload.  The 5% production gate
        # runs in the telemetry-smoke CI job on the full micro-workload.
        result = measure_disabled_overhead(repeats=3, n_test=1_000, dim=256)
        assert result["baseline_seconds"] > 0
        assert result["instrumented_seconds"] > 0
        # Batch-level instrumentation must stay within noise; anything near
        # 50% means a per-sample call slipped onto the hot path.
        assert result["overhead_fraction"] < 0.5

    def test_repeats_validated(self):
        with pytest.raises(ValueError):
            measure_disabled_overhead(repeats=0)

"""Telemetry counters under abrupt concept drift (online-learning recovery).

The counters are not decoration: under abrupt drift the rival-push rate is
exactly the signal an operator watches to see the model misranking and
re-adapting, so this test pins both the learning behaviour and the
counters that expose it.
"""

import numpy as np

from repro import telemetry
from repro.datasets.drift import drifting_stream
from repro.datasets.synthetic import SyntheticSpec
from repro.lookhd.classifier import LookHDClassifier, LookHDConfig
from repro.lookhd.online import OnlineLookHD

SPEC = SyntheticSpec(
    n_features=24,
    n_classes=3,
    n_train=90,
    n_test=30,
    class_separation=3.0,
    seed=13,
)


def _fitted_encoder():
    clf = LookHDClassifier(LookHDConfig(dim=256, levels=4, chunk_size=4, seed=13))
    batches = drifting_stream(SPEC, n_batches=2, batch_size=80, drift_magnitude=0.0)
    clf.fit(batches[0].features, batches[0].labels)
    return clf.encoder


class TestAbruptDriftTelemetry:
    def test_counters_track_recovery(self):
        encoder = _fitted_encoder()
        stream = drifting_stream(
            SPEC, n_batches=8, batch_size=80, drift_magnitude=2.0, abrupt=True
        )
        online = OnlineLookHD(encoder, SPEC.n_classes)
        per_batch_applied = []
        with telemetry.enabled() as registry:
            for batch in stream:
                before = registry.counter_value("online.updates.applied")
                online.partial_fit(batch.features, batch.labels)
                per_batch_applied.append(
                    registry.counter_value("online.updates.applied") - before
                )
            total_samples = registry.counter_value("online.samples")
            applied = registry.counter_value("online.updates.applied")
            skipped = registry.counter_value("online.updates.skipped")
            histogram = registry.snapshot()["histograms"].get("online.rival_push")

        assert total_samples == 8 * 80 == online.samples_seen
        assert applied + skipped == total_samples
        # Every rival push lands one histogram observation.
        assert histogram is not None
        assert histogram["count"] == applied

        # The abrupt midpoint jump must show up as a burst of corrective
        # updates relative to the settled pre-drift batches...
        pre_drift = per_batch_applied[3]
        at_drift = per_batch_applied[4]
        assert at_drift > pre_drift
        # ...and the learner must actually recover on the drifted data.
        post = stream[-1]
        assert online.score(post.features, post.labels) > 0.8

    def test_telemetry_disabled_costs_no_counters(self):
        encoder = _fitted_encoder()
        stream = drifting_stream(SPEC, n_batches=2, batch_size=40, abrupt=True)
        online = OnlineLookHD(encoder, SPEC.n_classes)
        for batch in stream:
            online.partial_fit(batch.features, batch.labels)
        assert telemetry.snapshot()["counters"] == {}

"""MetricsRegistry + module-level helper semantics."""

import threading

import numpy as np
import pytest

from repro import telemetry
from repro.telemetry import MetricsRegistry, metric_name
from repro.telemetry.registry import NULL_TIMER


class TestMetricName:
    def test_plain(self):
        assert metric_name("a.b") == "a.b"

    def test_labels_sorted(self):
        assert (
            metric_name("a", reason="x", path="y")
            == metric_name("a", path="y", reason="x")
            == "a{path=y,reason=x}"
        )


class TestRegistry:
    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        registry.count("c")
        registry.observe("h", 1.0)
        with registry.timer("t"):
            pass
        snap = registry.snapshot()
        assert snap == {"counters": {}, "timers": {}, "histograms": {}}

    def test_counter_accumulates(self):
        registry = MetricsRegistry(enabled=True)
        registry.count("c", 3)
        registry.count("c")
        assert registry.counter_value("c") == 4
        assert registry.counter_value("never") == 0

    def test_counter_labels_are_distinct_metrics(self):
        registry = MetricsRegistry(enabled=True)
        registry.count("paths", path="prebound")
        registry.count("paths", path="raw")
        registry.count("paths", path="raw")
        snap = registry.snapshot()["counters"]
        assert snap["paths{path=prebound}"] == 1
        assert snap["paths{path=raw}"] == 2

    def test_timer_records_count_total_max(self):
        registry = MetricsRegistry(enabled=True)
        registry.record_timing("t", 0.5)
        registry.record_timing("t", 1.5)
        stanza = registry.snapshot()["timers"]["t"]
        assert stanza["count"] == 2
        assert stanza["total_seconds"] == pytest.approx(2.0)
        assert stanza["max_seconds"] == pytest.approx(1.5)

    def test_timer_context_manager_measures(self):
        registry = MetricsRegistry(enabled=True)
        with registry.timer("t"):
            pass
        stanza = registry.snapshot()["timers"]["t"]
        assert stanza["count"] == 1
        assert stanza["max_seconds"] >= 0.0

    def test_histogram_bucketing_and_overflow(self):
        registry = MetricsRegistry(enabled=True)
        buckets = (1.0, 2.0)
        for value in (0.5, 1.0, 1.5, 99.0):
            registry.observe("h", value, buckets=buckets)
        stanza = registry.snapshot()["histograms"]["h"]
        # <=1.0 catches 0.5 and 1.0; <=2.0 catches 1.5; 99 overflows.
        assert stanza["counts"] == [2, 1, 1]
        assert stanza["count"] == 4
        assert stanza["total"] == pytest.approx(102.0)

    def test_histogram_bucket_redefinition_rejected(self):
        registry = MetricsRegistry(enabled=True)
        registry.observe("h", 0.1, buckets=(1.0,))
        with pytest.raises(ValueError):
            registry.observe("h", 0.1, buckets=(2.0,))

    def test_merge_histogram_matches_per_value_observes(self):
        buckets = (1.0, 2.0)
        observed = MetricsRegistry(enabled=True)
        for value in (0.5, 1.0, 1.5, 99.0):
            observed.observe("h", value, buckets=buckets)
        merged = MetricsRegistry(enabled=True)
        merged.merge_histogram("h", buckets, [2, 1, 1], 102.0)
        assert merged.snapshot()["histograms"]["h"] == (
            observed.snapshot()["histograms"]["h"]
        )

    def test_merge_histogram_accumulates_into_observed(self):
        registry = MetricsRegistry(enabled=True)
        buckets = (1.0, 2.0)
        registry.observe("h", 0.5, buckets=buckets)
        registry.merge_histogram("h", buckets, [0, 3, 1], 10.0)
        stanza = registry.snapshot()["histograms"]["h"]
        assert stanza["counts"] == [1, 3, 1]
        assert stanza["count"] == 5
        assert stanza["total"] == pytest.approx(10.5)

    def test_merge_histogram_rejects_wrong_cell_count(self):
        registry = MetricsRegistry(enabled=True)
        with pytest.raises(ValueError, match="bucket counts"):
            registry.merge_histogram("h", (1.0, 2.0), [1, 2], 3.0)

    def test_merge_histogram_rejects_bucket_redefinition(self):
        registry = MetricsRegistry(enabled=True)
        registry.observe("h", 0.1, buckets=(1.0,))
        with pytest.raises(ValueError, match="buckets"):
            registry.merge_histogram("h", (2.0,), [0, 1], 3.0)

    def test_merge_histogram_noop_while_disabled(self):
        registry = MetricsRegistry(enabled=False)
        registry.merge_histogram("h", (1.0,), [1, 0], 0.5)
        assert registry.snapshot()["histograms"] == {}

    def test_reset_clears_metrics_keeps_state(self):
        registry = MetricsRegistry(enabled=True)
        registry.count("c")
        registry.reset()
        assert registry.snapshot()["counters"] == {}
        assert registry.enabled

    def test_thread_safety_exact_totals(self):
        registry = MetricsRegistry(enabled=True)
        n_threads, per_thread = 8, 2_000

        def work():
            for _ in range(per_thread):
                registry.count("c")

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter_value("c") == n_threads * per_thread


class TestModuleHelpers:
    def test_default_is_disabled(self):
        assert not telemetry.is_enabled()
        telemetry.count("should.not.record")
        assert telemetry.snapshot()["counters"] == {}

    def test_disabled_timer_is_shared_null(self):
        assert telemetry.timer("t") is NULL_TIMER

    def test_enabled_context_is_fresh_and_restores(self):
        telemetry.count("outside")  # no-op: disabled
        with telemetry.enabled() as registry:
            assert telemetry.is_enabled()
            telemetry.count("inside")
            assert registry.counter_value("inside") == 1
        assert not telemetry.is_enabled()
        assert telemetry.snapshot()["counters"] == {}

    def test_enabled_in_place_accumulates_and_restores_state(self):
        registry = MetricsRegistry(enabled=False)
        registry.count("pre")  # ignored: disabled
        with telemetry.activated(registry):
            with telemetry.enabled(fresh=False) as same:
                assert same is registry
                telemetry.count("during")
            assert not registry.enabled
        assert registry.counter_value("during") == 1

    def test_disabled_context_suppresses(self):
        with telemetry.enabled() as registry:
            with telemetry.disabled():
                telemetry.count("suppressed")
            telemetry.count("recorded")
            assert registry.counter_value("suppressed") == 0
            assert registry.counter_value("recorded") == 1

    def test_activated_nesting_restores_previous(self):
        first = MetricsRegistry(enabled=True)
        second = MetricsRegistry(enabled=True)
        with telemetry.activated(first):
            with telemetry.activated(second):
                telemetry.count("x")
            telemetry.count("x")
        assert first.counter_value("x") == 1
        assert second.counter_value("x") == 1

    def test_snapshot_is_json_like(self):
        with telemetry.enabled() as registry:
            telemetry.count("c", 2)
            telemetry.observe("h", 0.3)
            with telemetry.timer("t"):
                np.zeros(4)
            snap = registry.snapshot()
        telemetry.validate_snapshot(snap)

"""Supervised respawn: dead workers are replaced, bit-identity preserved."""

from __future__ import annotations

import functools
import os

import numpy as np
import pytest

from repro.datasets.synthetic import SyntheticSpec, make_synthetic_classification
from repro.lookhd.classifier import LookHDClassifier, LookHDConfig
from repro.lookhd.trainer import LookHDTrainer
from repro.parallel.executor import WorkerError, shared_memory_available
from repro.parallel.trainer import ParallelTrainer

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="no working shared memory on this platform"
)


@pytest.fixture(scope="module")
def data():
    return make_synthetic_classification(
        SyntheticSpec(n_features=24, n_classes=4, n_train=160, n_test=80, seed=7),
        name="supervision",
    )


@pytest.fixture(scope="module")
def encoder(data):
    clf = LookHDClassifier(LookHDConfig(dim=256, levels=4, chunk_size=4, seed=3))
    clf.fit(data.train_features, data.train_labels)
    return clf.encoder


def _kill_once(fuse_path: str, shard) -> None:
    """First worker to claim the fuse file dies before counting its shard."""
    try:
        fd = os.open(fuse_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return
    os.close(fd)
    os._exit(1)


def _always_die(shard) -> None:
    os._exit(1)


def test_respawn_preserves_bit_identity(data, encoder, tmp_path):
    sequential = LookHDTrainer(encoder, 4)
    sequential.observe(data.train_features, data.train_labels)

    hook = functools.partial(_kill_once, str(tmp_path / "fuse"))
    parallel = ParallelTrainer(encoder, 4, n_workers=2, shard_hook=hook)
    parallel.observe(data.train_features, data.train_labels)

    assert parallel.last_parallel_stats["respawns"] == 1
    for ours, theirs in zip(parallel.counters, sequential.counters):
        assert np.array_equal(ours.counts, theirs.counts)
        assert ours.n_samples == theirs.n_samples
        assert ours.digest() == theirs.digest()
    assert np.array_equal(
        parallel.build_model().class_vectors, sequential.build_model().class_vectors
    )


def test_clean_run_needs_no_respawns(data, encoder):
    parallel = ParallelTrainer(encoder, 4, n_workers=2)
    parallel.observe(data.train_features, data.train_labels)
    assert parallel.last_parallel_stats["respawns"] == 0


def test_persistent_crash_escalates_typed_after_budget(data, encoder):
    parallel = ParallelTrainer(
        encoder, 4, n_workers=2, shard_hook=_always_die, max_respawns=1
    )
    with pytest.raises(WorkerError, match="respawn budget"):
        parallel.observe(data.train_features, data.train_labels)


def test_negative_respawn_budget_rejected(encoder):
    with pytest.raises(ValueError, match="max_respawns"):
        ParallelTrainer(encoder, 4, n_workers=2, max_respawns=-1).observe(
            np.zeros((4, 24)), np.zeros(4, dtype=np.int64)
        )

"""Bit-identity gate: the sharded trainer must equal the sequential one."""

import numpy as np
import pytest

from repro.datasets.synthetic import SyntheticSpec, make_synthetic_classification
from repro.lookhd.classifier import LookHDClassifier, LookHDConfig
from repro.lookhd.trainer import LookHDTrainer
from repro.parallel.executor import shared_memory_available
from repro.parallel.trainer import ParallelTrainer

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="no working shared memory on this platform"
)


@pytest.fixture(scope="module")
def data():
    spec = SyntheticSpec(
        n_features=24, n_classes=4, n_train=160, n_test=80, seed=7
    )
    return make_synthetic_classification(spec, name="parallel")


_FITTED_CACHE = {}


def _fitted(data, levels, decorrelate):
    """A fitted classifier per (q, decorrelate) cell, shared across the grid."""
    key = (levels, decorrelate)
    if key not in _FITTED_CACHE:
        clf = LookHDClassifier(
            LookHDConfig(
                dim=256, levels=levels, chunk_size=4, decorrelate=decorrelate, seed=3
            )
        )
        clf.fit(data.train_features, data.train_labels)
        _FITTED_CACHE[key] = clf
    return _FITTED_CACHE[key]


@pytest.mark.parametrize("n_workers", [1, 2, 4])
@pytest.mark.parametrize("decorrelate", [False, True])
@pytest.mark.parametrize("levels", [2, 4])
def test_bit_identity_grid(data, levels, decorrelate, n_workers):
    """q ∈ {2, 4} × decorrelate on/off × n_workers ∈ {1, 2, 4}: exact match."""
    clf = _fitted(data, levels, decorrelate)
    sequential = LookHDTrainer(clf.encoder, clf.n_classes)
    sequential.observe(data.train_features, data.train_labels)
    parallel = ParallelTrainer(clf.encoder, clf.n_classes, n_workers=n_workers)
    parallel.observe(data.train_features, data.train_labels)
    assert np.array_equal(
        parallel.build_model().class_vectors, sequential.build_model().class_vectors
    )


def test_empty_shards_when_workers_outnumber_samples(data):
    clf = _fitted(data, 4, True)
    tiny_x = data.train_features[:3]
    tiny_y = data.train_labels[:3]
    sequential = LookHDTrainer(clf.encoder, clf.n_classes)
    sequential.observe(tiny_x, tiny_y)
    parallel = ParallelTrainer(clf.encoder, clf.n_classes, n_workers=8)
    parallel.observe(tiny_x, tiny_y)
    assert np.array_equal(
        parallel.build_model().class_vectors, sequential.build_model().class_vectors
    )


def test_streaming_observe_matches_one_shot(data):
    """Two sharded observe calls accumulate exactly like one sequential pass."""
    clf = _fitted(data, 4, False)
    sequential = LookHDTrainer(clf.encoder, clf.n_classes)
    sequential.observe(data.train_features, data.train_labels)
    parallel = ParallelTrainer(clf.encoder, clf.n_classes, n_workers=2)
    half = data.train_features.shape[0] // 2
    parallel.observe(data.train_features[:half], data.train_labels[:half])
    parallel.observe(data.train_features[half:], data.train_labels[half:])
    assert np.array_equal(
        parallel.build_model().class_vectors, sequential.build_model().class_vectors
    )


def test_single_worker_falls_back_in_process(data):
    clf = _fitted(data, 4, False)
    trainer = ParallelTrainer(clf.encoder, clf.n_classes, n_workers=1)
    trainer.observe(data.train_features, data.train_labels)
    assert trainer.last_parallel_stats is None  # sequential fallback path


def test_parallel_stats_recorded(data):
    clf = _fitted(data, 4, False)
    trainer = ParallelTrainer(clf.encoder, clf.n_classes, n_workers=2)
    trainer.observe(data.train_features, data.train_labels)
    stats = trainer.last_parallel_stats
    assert stats is not None
    assert stats["n_workers"] == 2
    assert len(stats["shard_seconds"]) == 2
    assert stats["shared_bytes"] > 0
    assert stats["wall_seconds"] >= stats["merge_seconds"]
    assert 0.0 <= stats["utilisation"] <= 1.0


def test_classifier_fit_n_workers_is_bit_identical(data):
    sequential = LookHDClassifier(LookHDConfig(dim=256, levels=4, chunk_size=4, seed=3))
    sequential.fit(data.train_features, data.train_labels)
    parallel = LookHDClassifier(LookHDConfig(dim=256, levels=4, chunk_size=4, seed=3))
    parallel.fit(data.train_features, data.train_labels, n_workers=2)
    assert isinstance(parallel.trainer, ParallelTrainer)
    assert np.array_equal(
        parallel.class_model.class_vectors, sequential.class_model.class_vectors
    )
    assert np.array_equal(
        parallel.predict(data.test_features), sequential.predict(data.test_features)
    )

"""Parallel fault sweep: byte-identical to sequential for any worker count."""

import json

import pytest

from repro.faults.sweep import SweepConfig, run_ber_sweep, trial_seeds
from repro.parallel.executor import shared_memory_available

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="no working shared memory on this platform"
)


@pytest.fixture(scope="module")
def config():
    return SweepConfig(
        bers=(1e-3, 1e-2),
        dim=128,
        n_features=16,
        n_classes=3,
        n_train=90,
        n_test=60,
        trials=2,
        noise_sigmas=(),
        retrain_iterations=0,
    )


def test_parallel_sweep_is_byte_identical(config):
    sequential = run_ber_sweep(config, n_workers=1)
    parallel = run_ber_sweep(config, n_workers=2)
    assert json.dumps(sequential, sort_keys=True) == json.dumps(parallel, sort_keys=True)


def test_trial_seeds_deterministic_and_collision_free(config):
    """SeedSequence-spawned trial seeds depend only on the config."""
    seeds = trial_seeds(config)
    assert seeds == trial_seeds(config)
    # One seed per (variant, ber index, trial), no collisions.
    assert len(set(seeds.values())) == len(seeds)
    variants = {variant for variant, _, _ in seeds}
    assert len(seeds) == len(variants) * len(config.bers) * config.trials

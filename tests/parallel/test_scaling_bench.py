"""Training-scaling bench: per-worker-count timings, SHA gate, schema."""

import copy

import pytest

from repro.bench.runner import run_training_scaling_bench, write_bench_files
from repro.bench.schema import validate_bench_payload
from repro.bench.workloads import BenchWorkload, is_scaling_profile, profile_workloads
from repro.parallel.executor import shared_memory_available

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="no working shared memory on this platform"
)

_TINY = BenchWorkload(
    name="tiny_scaling",
    dim=128,
    levels=4,
    chunk_size=4,
    n_features=16,
    n_classes=3,
    n_train=120,
    n_test=60,
)


@pytest.fixture(scope="module")
def payload():
    return run_training_scaling_bench((_TINY,), worker_counts=(1, 2), repeats=1)


class TestScalingBench:
    def test_payload_passes_schema(self, payload):
        assert validate_bench_payload(payload, "training") is payload

    def test_every_point_is_bit_identical(self, payload):
        entry = payload["workloads"][0]
        assert entry["checks"]["parallel_outputs_match"] is True
        sequential_sha = entry["checks"]["outputs_sha256"]
        for point in entry["scaling"]["points"]:
            assert point["outputs_match"] is True
            assert point["outputs_sha256"] == sequential_sha

    def test_per_worker_timings_present(self, payload):
        timings = payload["workloads"][0]["timings"]
        assert {"train_reference", "train_lookup", "train_parallel_w1", "train_parallel_w2"} <= set(
            timings
        )

    def test_scaling_block_shape(self, payload):
        scaling = payload["workloads"][0]["scaling"]
        assert scaling["worker_counts"] == [1, 2]
        assert scaling["cpu_count"] >= 1
        points = {point["n_workers"]: point for point in scaling["points"]}
        assert points[1]["in_process"] is True
        assert points[2]["in_process"] is False
        assert points[1]["speedup_vs_workers1"] == pytest.approx(1.0)
        assert points[2]["speedup_vs_workers1"] > 0

    def test_schema_rejects_divergent_parallel_outputs(self, payload):
        broken = copy.deepcopy(payload)
        broken["workloads"][0]["checks"]["parallel_outputs_match"] = False
        with pytest.raises(ValueError, match="parallel trainer diverged"):
            validate_bench_payload(broken, "training")

    def test_schema_rejects_malformed_point(self, payload):
        broken = copy.deepcopy(payload)
        del broken["workloads"][0]["scaling"]["points"][0]["outputs_sha256"]
        with pytest.raises(ValueError, match="outputs_sha256"):
            validate_bench_payload(broken, "training")

    def test_invalid_worker_counts_rejected(self):
        with pytest.raises(ValueError):
            run_training_scaling_bench((_TINY,), worker_counts=(), repeats=1)
        with pytest.raises(ValueError):
            run_training_scaling_bench((_TINY,), worker_counts=(0,), repeats=1)


class TestScalingProfiles:
    def test_profiles_registered(self):
        assert is_scaling_profile("training-scaling")
        assert is_scaling_profile("training-scaling-smoke")
        assert not is_scaling_profile("full")
        assert profile_workloads("training-scaling-smoke")

    def test_write_bench_files_writes_training_only(self, tmp_path):
        training_path, inference_path = write_bench_files(
            "training-scaling-smoke",
            out_dir=tmp_path,
            repeats=1,
            worker_counts=(1, 2),
        )
        assert training_path.exists()
        assert inference_path is None
        assert not (tmp_path / "BENCH_inference.json").exists()

"""Executor layer: shard planning, shared-memory shipping, typed errors."""

import pickle

import numpy as np
import pytest

from repro.parallel.executor import (
    AttachedArray,
    ProcessExecutor,
    SharedArray,
    WorkerError,
    default_start_method,
    plan_shards,
    resolve_n_workers,
    shared_memory_available,
)

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="no working shared memory on this platform"
)


# Task functions must be module-level so worker processes can import them.
def _double(task):
    return task * 2


def _fail_on_three(task):
    if task == 3:
        raise ValueError("boom three")
    return task


_STATE = {}


def _install_state(value):
    _STATE["value"] = value


def _read_state(task):
    return (_STATE.get("value"), task)


def _clear_state():
    _STATE.clear()


class TestPlanShards:
    def test_even_split(self):
        assert plan_shards(8, 4) == ((0, 2), (2, 4), (4, 6), (6, 8))

    def test_remainder_goes_to_leading_shards(self):
        assert plan_shards(10, 4) == ((0, 3), (3, 6), (6, 8), (8, 10))

    def test_more_workers_than_items_yields_empty_tail_shards(self):
        shards = plan_shards(2, 5)
        assert len(shards) == 5
        assert shards[:2] == ((0, 1), (1, 2))
        assert all(start == stop for start, stop in shards[2:])

    def test_zero_items(self):
        assert plan_shards(0, 3) == ((0, 0), (0, 0), (0, 0))

    def test_shards_are_contiguous_and_cover_everything(self):
        shards = plan_shards(17, 5)
        assert shards[0][0] == 0
        assert shards[-1][1] == 17
        for (_, stop), (start, _) in zip(shards, shards[1:]):
            assert stop == start

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            plan_shards(-1, 2)
        with pytest.raises(ValueError):
            plan_shards(4, 0)


class TestResolveNWorkers:
    def test_none_means_one(self):
        assert resolve_n_workers(None) == 1

    def test_positive_passes_through(self):
        assert resolve_n_workers(4) == 4

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            resolve_n_workers(0)


class TestSharedArray:
    def test_round_trip(self):
        original = np.arange(24, dtype=np.float32).reshape(4, 6)
        shared = SharedArray(original)
        try:
            attached = AttachedArray(shared.spec)
            assert np.array_equal(attached.array, original)
            assert not attached.array.flags.writeable
            attached.close()
        finally:
            shared.close()

    def test_spec_is_picklable(self):
        shared = SharedArray(np.zeros(3))
        try:
            spec = pickle.loads(pickle.dumps(shared.spec))
            assert spec == shared.spec
        finally:
            shared.close()

    def test_zero_size_array(self):
        shared = SharedArray(np.empty((0, 5), dtype=np.int64))
        try:
            attached = AttachedArray(shared.spec)
            assert attached.array.shape == (0, 5)
            attached.close()
        finally:
            shared.close()

    def test_close_is_idempotent(self):
        shared = SharedArray(np.ones(4))
        shared.close()
        shared.close()

    def test_context_manager_unlinks(self):
        with SharedArray(np.ones(4)) as shared:
            spec = shared.spec
        with pytest.raises(FileNotFoundError):
            AttachedArray(spec)


class TestProcessExecutor:
    def test_in_process_fallback(self):
        executor = ProcessExecutor(n_workers=1)
        assert executor.map(_double, [1, 2, 3]) == [2, 4, 6]
        assert executor.last_stats.in_process is True

    def test_single_task_stays_in_process(self):
        executor = ProcessExecutor(n_workers=4)
        assert executor.map(_double, [5]) == [10]
        assert executor.last_stats.in_process is True

    def test_two_workers_preserve_task_order(self):
        tasks = list(range(7))
        executor = ProcessExecutor(n_workers=2)
        assert executor.map(_double, tasks) == [task * 2 for task in tasks]
        stats = executor.last_stats
        assert stats.in_process is False
        assert stats.n_workers == 2
        assert len(stats.task_seconds) == len(tasks)
        assert 0.0 <= stats.utilisation <= 1.0

    def test_initializer_broadcast_and_finalizer(self):
        executor = ProcessExecutor(
            n_workers=2,
            initializer=_install_state,
            initargs=("broadcast",),
            finalizer=_clear_state,
        )
        results = executor.map(_read_state, [0, 1, 2])
        assert results == [("broadcast", 0), ("broadcast", 1), ("broadcast", 2)]
        # The parent's module state is untouched (workers are processes).
        assert "value" not in _STATE

    def test_worker_error_is_typed(self):
        executor = ProcessExecutor(n_workers=2)
        with pytest.raises(WorkerError) as excinfo:
            executor.map(_fail_on_three, [1, 2, 3, 4])
        error = excinfo.value
        assert error.cause_type == "ValueError"
        assert "boom three" in str(error)
        assert "boom three" in error.worker_traceback

    def test_default_start_method_is_supported(self):
        assert default_start_method() in ("fork", "spawn")

"""Opt-in approximate scoring (SHEARer-style partial-chunk early exit).

Approximate mode is deliberately *excluded* from the bit-identity gates —
these tests pin down the contract instead: exact by default, exact at
``approx=1.0``, margin-refined rows bit-exact, an accuracy floor at the
documented operating point, and hard validation of the knob itself.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.datasets.synthetic import SyntheticSpec, make_synthetic_classification
from repro.lookhd.classifier import LookHDClassifier, LookHDConfig

#: Documented accuracy floor for the sweep's mid operating point
#: (``approx=0.5`` with no refinement): within 5 points of exact.
ACCURACY_FLOOR = 0.05


@pytest.fixture(scope="module")
def dataset():
    spec = SyntheticSpec(
        n_features=40,
        n_classes=8,
        n_train=400,
        n_test=200,
        class_separation=2.5,
        seed=23,
    )
    return make_synthetic_classification(spec, name="approx")


@pytest.fixture(scope="module")
def clf(dataset):
    model = LookHDClassifier(LookHDConfig(dim=512, levels=4, chunk_size=4, seed=9))
    model.fit(dataset.train_features, dataset.train_labels)
    assert model.fused_engine().enabled
    return model


class TestApproxContract:
    def test_default_is_exact(self, clf, dataset):
        engine = clf.fused_engine()
        addresses = clf.encoder.addresses(dataset.test_features)
        exact = engine.scores_addresses(addresses)
        again = engine.scores_addresses(addresses, approx=None)
        assert np.array_equal(exact, again)

    def test_approx_one_is_bit_identical_to_exact(self, clf, dataset):
        engine = clf.fused_engine()
        addresses = clf.encoder.addresses(dataset.test_features)
        exact = engine.scores_addresses(addresses)
        assert np.array_equal(engine.scores_addresses(addresses, approx=1.0), exact)

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5, np.nan])
    def test_invalid_fraction_rejected(self, clf, dataset, bad):
        engine = clf.fused_engine()
        addresses = clf.encoder.addresses(dataset.test_features[:4])
        with pytest.raises(ValueError, match="approx"):
            engine.scores_addresses(addresses, approx=bad)

    def test_partial_scores_equal_prefix_gather(self, clf, dataset):
        """approx=f scores exactly the first ceil(f·m) chunks, no more."""
        engine = clf.fused_engine()
        addresses = clf.encoder.addresses(dataset.test_features)
        table = engine.score_table
        m = addresses.shape[1]
        for fraction in (0.25, 0.5, 0.75):
            k0 = max(1, int(np.ceil(fraction * m)))
            expected = np.zeros((addresses.shape[0], table.shape[2]))
            for chunk in range(k0):
                expected += table[chunk][addresses[:, chunk]]
            actual = engine.scores_addresses(addresses, approx=fraction)
            assert np.array_equal(actual, expected), fraction

    def test_huge_margin_refines_everything_to_exact_bits(self, clf, dataset):
        """With a margin no row can clear, every row is refined — and the
        chunk-major accumulation order makes the result bit-identical to
        full scoring, not merely close."""
        engine = clf.fused_engine()
        addresses = clf.encoder.addresses(dataset.test_features)
        exact = engine.scores_addresses(addresses)
        refined = engine.scores_addresses(addresses, approx=0.25, approx_margin=np.inf)
        assert np.array_equal(refined, exact)

    def test_zero_margin_disables_refinement(self, clf, dataset):
        engine = clf.fused_engine()
        addresses = clf.encoder.addresses(dataset.test_features)
        with telemetry.enabled() as metrics:
            engine.scores_addresses(addresses, approx=0.5, approx_margin=0.0)
        counters = metrics.snapshot()["counters"]
        assert counters["inference.approx.queries"] == addresses.shape[0]
        assert counters["inference.approx.refined"] == 0

    def test_margin_refines_only_uncertain_rows(self, clf, dataset):
        engine = clf.fused_engine()
        addresses = clf.encoder.addresses(dataset.test_features)
        with telemetry.enabled() as metrics:
            engine.scores_addresses(addresses, approx=0.5, approx_margin=1.0)
        counters = metrics.snapshot()["counters"]
        refined = counters["inference.approx.refined"]
        assert 0 <= refined <= addresses.shape[0]

    def test_accuracy_floor_at_operating_point(self, clf, dataset):
        """The documented operating point (EXPERIMENTS.md): approx=0.5
        with a small early-exit margin stays within ACCURACY_FLOOR of
        exact accuracy while genuinely skipping work on confident rows."""
        exact = clf.predict(dataset.test_features)
        with telemetry.enabled() as metrics:
            approx = clf.predict(dataset.test_features, approx=0.5, approx_margin=5.0)
        labels = dataset.test_labels
        exact_accuracy = float(np.mean(exact == labels))
        approx_accuracy = float(np.mean(approx == labels))
        assert approx_accuracy >= exact_accuracy - ACCURACY_FLOOR
        counters = metrics.snapshot()["counters"]
        # The early exit must actually fire: some rows skipped refinement.
        assert counters["inference.approx.refined"] < counters["inference.approx.queries"]

    def test_margin_recovers_exact_predictions(self, clf, dataset):
        exact = clf.predict(dataset.test_features)
        recovered = clf.predict(dataset.test_features, approx=0.25, approx_margin=np.inf)
        assert np.array_equal(recovered, exact)

    def test_classifier_predict_passthrough_shapes(self, clf, dataset):
        single = clf.predict(dataset.test_features[0], approx=0.5)
        assert np.isscalar(single) or np.asarray(single).ndim == 0
        batch = clf.predict(dataset.test_features[:7], approx=0.5)
        assert np.asarray(batch).shape == (7,)

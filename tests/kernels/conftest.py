"""Registry-state isolation: every test leaves the process-wide kernel
registry exactly as it found it (mode, factories, resolutions)."""

from __future__ import annotations

import pytest

from repro.kernels import registry


@pytest.fixture(autouse=True)
def restore_registry():
    mode = registry.current_mode()
    factories = dict(registry._BACKEND_FACTORIES)
    yield
    registry._BACKEND_FACTORIES.clear()
    registry._BACKEND_FACTORIES.update(factories)
    # set_backend resets all resolution/demotion state (and bumps the
    # version counter, which is fine — it is monotonic by contract).
    registry.set_backend(mode)

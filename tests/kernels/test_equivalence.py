"""Bit-identity equivalence suite for every kernel primitive.

Three layers of evidence that a registry backend can never change
results:

1. **Reference vs pre-registry semantics** — each NumPy reference
   primitive is compared against an independent re-derivation of the
   computation the callers used before the registry existed (explicit
   loops, ``np.bincount``, dense GEMMs), over a dtype × shape × ``q``
   grid.
2. **Backend vs reference** — every registered compiled backend
   (Numba where installed) is compared bit for bit against the reference
   on the same grid.  Where no compiled backend is available the grid
   runs against the reference alone, keeping the suite green on
   NumPy-only machines.
3. **Hypothesis properties** — randomly generated inputs check the
   invariants that make bit-identity possible (address ranges, count
   conservation, popcount-vs-int, chunk-major accumulation).

Plus the satellite: the NumPy >= 2.0 ``bitwise_count`` feature gate and
its byte-LUT fallback agree exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.kernels import reference, registry
from repro.kernels.reference import (
    OP_NAMES,
    REFERENCE_OPS,
    popcount_lut,
    probe_inputs,
)
from repro.quantization.codebook import chunk_addresses as codebook_chunk_addresses

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _compiled_backends() -> list[str]:
    """Registered compiled backends that actually built on this machine."""
    names = []
    for name in registry._BACKEND_FACTORIES:
        if registry._candidate_ops(name):
            names.append(name)
    return names


def _impls(op: str):
    """(label, callable) pairs to check against the reference for ``op``."""
    pairs = [("numpy", REFERENCE_OPS[op])]
    for name in _compiled_backends():
        fn = registry._candidate_ops(name).get(op)
        if fn is not None:
            pairs.append((name, fn))
    return pairs


def _assert_identical(expected, actual, label):
    expected = np.asarray(expected)
    actual = np.asarray(actual)
    assert actual.shape == expected.shape, label
    assert actual.dtype == expected.dtype, label
    assert np.array_equal(actual, expected), label


class TestChunkAddresses:
    @pytest.mark.parametrize("q", [2, 4, 6])
    @pytest.mark.parametrize("shape", [(1, 4), (17, 23), (64, 100)])
    @pytest.mark.parametrize("dtype", [np.int64, np.int32, np.uint8])
    def test_grid_matches_codebook_helper(self, q, shape, dtype):
        rng = np.random.default_rng(q * 1000 + shape[1])
        levels = rng.integers(0, q, size=shape).astype(dtype)
        chunk_size = 3
        n_chunks = -(-shape[1] // chunk_size)
        # The pre-registry path: pad, reshape to (N, m, r), then the
        # codebook's per-chunk big-endian helper.
        pad = np.zeros((shape[0], n_chunks * chunk_size - shape[1]), dtype=np.int64)
        chunked = np.concatenate([levels.astype(np.int64), pad], axis=1).reshape(
            shape[0], n_chunks, chunk_size
        )
        expected = codebook_chunk_addresses(chunked, q)
        for label, fn in _impls("chunk_addresses"):
            _assert_identical(expected, fn(levels, q, chunk_size, n_chunks, 0), label)

    def test_pad_level_used_for_tail(self):
        levels = np.array([[1, 1, 1, 1, 1]], dtype=np.int64)
        # 5 features, chunks of 3 → second chunk is (1, 1, pad).
        for pad in (0, 1):
            expected = np.array([[1 * 9 + 1 * 3 + 1, 1 * 9 + 1 * 3 + pad]])
            for label, fn in _impls("chunk_addresses"):
                _assert_identical(expected, fn(levels, 3, 3, 2, pad), f"{label} pad={pad}")

    @given(seed=seeds, q=st.integers(2, 8), n=st.integers(1, 40), batch=st.integers(0, 12))
    @settings(max_examples=40, deadline=None)
    def test_property_addresses_in_range_and_big_endian(self, seed, q, n, batch):
        rng = np.random.default_rng(seed)
        levels = rng.integers(0, q, size=(batch, n), dtype=np.int64)
        chunk_size = min(3, n)
        n_chunks = -(-n // chunk_size)
        for label, fn in _impls("chunk_addresses"):
            addresses = fn(levels, q, chunk_size, n_chunks, 0)
            assert addresses.shape == (batch, n_chunks)
            assert addresses.min(initial=0) >= 0
            assert addresses.max(initial=0) < q**chunk_size
            if batch:
                # First chunk of the first sample, big-endian by hand.
                digits = levels[0, :chunk_size]
                manual = 0
                for digit in digits:
                    manual = manual * q + int(digit)
                assert addresses[0, 0] == manual, label


class TestCounterObserve:
    @pytest.mark.parametrize("q_r", [8, 16, 1024])
    @pytest.mark.parametrize("shape", [(0, 4), (1, 1), (200, 20)])
    def test_grid_matches_manual_histogram(self, q_r, shape):
        rng = np.random.default_rng(q_r + shape[0])
        addresses = rng.integers(0, q_r, size=shape, dtype=np.int64)
        n_chunks = shape[1]
        expected = np.zeros((n_chunks, q_r), dtype=np.int64)
        for row in addresses:
            for chunk, address in enumerate(row):
                expected[chunk, address] += 1
        for label, fn in _impls("counter_observe"):
            _assert_identical(expected, fn(addresses, n_chunks, q_r), label)

    @given(seed=seeds, batch=st.integers(0, 64), n_chunks=st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_property_counts_conserve_batch_size(self, seed, batch, n_chunks):
        rng = np.random.default_rng(seed)
        addresses = rng.integers(0, 32, size=(batch, n_chunks), dtype=np.int64)
        for label, fn in _impls("counter_observe"):
            counts = fn(addresses, n_chunks, 32)
            assert counts.shape == (n_chunks, 32), label
            assert np.all(counts.sum(axis=1) == batch), label


class TestCounterMaterialize:
    @pytest.mark.parametrize("occupancy", ["dense", "sparse", "empty"])
    @pytest.mark.parametrize("dim", [16, 250])
    def test_grid_matches_dense_formula(self, occupancy, dim):
        rng = np.random.default_rng(dim)
        n_chunks, n_rows = 5, 27
        counts = rng.integers(0, 7, size=(n_chunks, n_rows)).astype(np.int64)
        if occupancy == "sparse":
            mask = rng.random(counts.shape) < 0.05
            counts = np.where(mask, counts, 0)
        elif occupancy == "empty":
            counts = np.zeros_like(counts)
        table = rng.choice([-1, 1], size=(n_rows, dim)).astype(np.int16)
        positions = rng.choice([-1, 1], size=(n_chunks, dim)).astype(np.int64)
        expected = (
            (counts @ table.astype(np.int64)) * positions
        ).sum(axis=0)
        for label, fn in _impls("counter_materialize"):
            _assert_identical(expected, fn(counts, table, positions), label)

    @given(seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_property_linear_in_counts(self, seed):
        rng = np.random.default_rng(seed)
        counts = rng.integers(0, 5, size=(3, 8)).astype(np.int64)
        table = rng.integers(-3, 4, size=(8, 12)).astype(np.int64)
        positions = rng.choice([-1, 1], size=(3, 12)).astype(np.int64)
        for label, fn in _impls("counter_materialize"):
            doubled = fn(2 * counts, table, positions)
            single = fn(counts, table, positions)
            assert np.array_equal(doubled, 2 * single), label


class TestGatherAccumulate:
    @pytest.mark.parametrize("table_dtype", [np.float64, np.int16, np.int64])
    @pytest.mark.parametrize("shape", [(1, 1, 1), (4, 16, 13), (20, 64, 7)])
    def test_grid_matches_chunk_major_loop(self, table_dtype, shape):
        rng = np.random.default_rng(shape[1])
        m, rows, width = shape
        if np.issubdtype(table_dtype, np.floating):
            table = rng.standard_normal(shape)
            out_dtype = np.float64
        else:
            table = rng.integers(-9, 10, size=shape).astype(table_dtype)
            out_dtype = np.int64
        addresses = rng.integers(0, rows, size=(11, m), dtype=np.int64)
        expected = np.zeros((11, width), dtype=out_dtype)
        for chunk in range(m):
            expected += table[chunk][addresses[:, chunk]]
        for label, fn in _impls("gather_accumulate"):
            _assert_identical(expected, fn(table, addresses, out_dtype), label)

    @given(seed=seeds, m=st.integers(1, 6), width=st.integers(1, 9))
    @settings(max_examples=40, deadline=None)
    def test_property_float_accumulation_is_chunk_major(self, seed, m, width):
        """The float sum must equal the sequential chunk-major loop exactly
        (not merely approximately) — this is the bit-identity contract."""
        rng = np.random.default_rng(seed)
        table = rng.standard_normal((m, 8, width))
        addresses = rng.integers(0, 8, size=(5, m), dtype=np.int64)
        expected = np.zeros((5, width))
        for chunk in range(m):
            expected += table[chunk][addresses[:, chunk]]
        for label, fn in _impls("gather_accumulate"):
            assert np.array_equal(fn(table, addresses, np.float64), expected), label


class TestPackedPopcount:
    @pytest.mark.parametrize(
        "shape", [(1,), (7,), (3, 5), (2, 3, 4)], ids=["w1", "w7", "2d", "3d"]
    )
    def test_grid_matches_python_bit_count(self, shape):
        rng = np.random.default_rng(sum(shape))
        words = rng.integers(0, 2**63, size=shape, dtype=np.uint64)
        flat = words.reshape(-1, shape[-1])
        expected = np.array(
            [sum(int(w).bit_count() for w in row) for row in flat], dtype=np.int64
        ).reshape(shape[:-1])
        for label, fn in _impls("packed_popcount"):
            _assert_identical(expected, fn(words), label)

    def test_extremes(self):
        words = np.array([[0, 0xFFFFFFFFFFFFFFFF, 1, 1 << 63]], dtype=np.uint64)
        for label, fn in _impls("packed_popcount"):
            _assert_identical(np.array([66], dtype=np.int64), fn(words), label)

    def test_lut_fallback_matches_packed_popcount(self):
        """Satellite: the byte-LUT fallback is bit-identical to whatever
        ``packed_popcount`` dispatches to (``np.bitwise_count`` on
        NumPy >= 2), so the feature gate can never change results."""
        rng = np.random.default_rng(0xFA11)
        words = rng.integers(0, 2**63, size=(128, 16), dtype=np.uint64)
        _assert_identical(reference.packed_popcount(words), popcount_lut(words), "lut")

    def test_feature_gate_forced_to_lut(self, monkeypatch):
        rng = np.random.default_rng(1)
        words = rng.integers(0, 2**63, size=(16, 4), dtype=np.uint64)
        expected = reference.packed_popcount(words)
        monkeypatch.setattr(reference, "BITWISE_COUNT", None)
        _assert_identical(expected, reference.packed_popcount(words), "gated")
        with pytest.raises(RuntimeError):
            reference.popcount_bitwise_count(words)

    @given(seed=seeds, width=st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_property_popcount_bounds_and_exactness(self, seed, width):
        rng = np.random.default_rng(seed)
        words = rng.integers(0, 2**63, size=(4, width), dtype=np.uint64)
        expected = np.array(
            [sum(int(w).bit_count() for w in row) for row in words], dtype=np.int64
        )
        for label, fn in _impls("packed_popcount"):
            counts = fn(words)
            assert np.array_equal(counts, expected), label
            assert counts.max(initial=0) <= 64 * width


class TestCompressedScore:
    @pytest.mark.parametrize("shape", [(1, 8, 3), (64, 256, 13), (128, 2000, 26)])
    def test_grid_matches_gemm(self, shape):
        batch, dim, k = shape
        rng = np.random.default_rng(dim)
        queries = rng.standard_normal((batch, dim))
        search = rng.standard_normal((k, dim))
        expected = queries @ search.T
        for label, fn in _impls("compressed_score"):
            _assert_identical(expected, fn(queries, search), label)

    def test_non_contiguous_queries(self):
        rng = np.random.default_rng(3)
        queries = rng.standard_normal((32, 64))[::2]
        search = rng.standard_normal((5, 64))
        expected = queries @ search.T
        for label, fn in _impls("compressed_score"):
            _assert_identical(expected, fn(queries, search), label)


class TestRegistryLevelEquivalence:
    """Dispatch through the public ``kernels.*`` wrappers under every
    selectable mode — whatever backend wins must serve reference bits."""

    @pytest.mark.parametrize("mode", ["numpy", "auto", "numba"])
    def test_all_ops_reference_identical_on_probes(self, mode, recwarn):
        kernels.set_backend(mode)
        public = {
            "chunk_addresses": kernels.chunk_addresses,
            "counter_observe": kernels.counter_observe,
            "counter_materialize": kernels.counter_materialize,
            "gather_accumulate": kernels.gather_accumulate,
            "packed_popcount": kernels.packed_popcount,
            "compressed_score": kernels.compressed_score,
        }
        assert set(public) == set(OP_NAMES)
        for op, fn in public.items():
            for probe in probe_inputs(op):
                _assert_identical(
                    REFERENCE_OPS[op](*probe), fn(*probe), f"{mode}:{op}"
                )

"""Behavioural suite for the kernel backend registry.

Covers mode selection (env var + ``set_backend``), the verify-and-demote
safety net (a compiled backend that does not reproduce the reference bit
for bit must never serve), the ``backend_version`` invalidation counter,
and the introspection surface (``active_backends`` / ``demotions`` /
``describe``).  Fake backend factories stand in for Numba so the demotion
machinery is exercised even where Numba is not installed.
"""

import warnings

import numpy as np
import pytest

from repro import kernels, telemetry
from repro.kernels import KernelBackendWarning, registry
from repro.kernels import numba_backend
from repro.kernels.reference import OP_NAMES, REFERENCE_OPS, probe_inputs


def _reference_like_ops():
    """A complete fake backend that is bit-identical to the reference."""
    return {op: REFERENCE_OPS[op] for op in OP_NAMES}


def _install_fake(ops_factory, name="fake"):
    """Register a fake factory as the *only* compiled backend.

    ``auto`` mode tries factories in registration order, so a real Numba
    install would otherwise win before the fake is ever consulted; the
    conftest fixture restores the factory table after each test.
    """
    registry._BACKEND_FACTORIES.pop("numba", None)
    registry.register_backend_factory(name, ops_factory)


def _wrong_chunk_addresses(levels, q, chunk_size, n_chunks, pad_level=0):
    return REFERENCE_OPS["chunk_addresses"](levels, q, chunk_size, n_chunks, pad_level) + 1


class TestModeSelection:
    def test_env_var_default_is_auto(self, monkeypatch):
        monkeypatch.delenv(registry.BACKEND_ENV_VAR, raising=False)
        assert registry._read_env_mode() == "auto"

    @pytest.mark.parametrize("mode", ["auto", "numpy", "numba"])
    def test_env_var_valid_modes(self, monkeypatch, mode):
        monkeypatch.setenv(registry.BACKEND_ENV_VAR, mode)
        assert registry._read_env_mode() == mode

    def test_env_var_is_normalised(self, monkeypatch):
        monkeypatch.setenv(registry.BACKEND_ENV_VAR, "  NumPy \n")
        assert registry._read_env_mode() == "numpy"

    def test_env_var_invalid_warns_and_uses_auto(self, monkeypatch):
        monkeypatch.setenv(registry.BACKEND_ENV_VAR, "cuda")
        with pytest.warns(KernelBackendWarning, match="cuda"):
            assert registry._read_env_mode() == "auto"

    def test_set_backend_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="backend mode"):
            kernels.set_backend("fortran")

    def test_set_backend_bumps_version(self):
        before = kernels.backend_version()
        kernels.set_backend("numpy")
        assert kernels.backend_version() == before + 1
        kernels.set_backend("auto")
        assert kernels.backend_version() == before + 2

    def test_numpy_mode_pins_reference_everywhere(self):
        registry.register_backend_factory("fake", _reference_like_ops)
        kernels.set_backend("numpy")
        assert set(kernels.active_backends().values()) == {"numpy"}

    def test_register_factory_cannot_shadow_numpy(self):
        with pytest.raises(ValueError, match="reference"):
            registry.register_backend_factory("numpy", _reference_like_ops)


class TestVerifyAndDemote:
    def test_verified_fake_backend_serves(self):
        _install_fake(_reference_like_ops)
        kernels.set_backend("auto")
        active = kernels.active_backends()
        assert set(active.values()) == {"fake"}
        levels = np.array([[0, 1, 2, 3]], dtype=np.int64)
        expected = REFERENCE_OPS["chunk_addresses"](levels, 4, 2, 2, 0)
        assert np.array_equal(kernels.chunk_addresses(levels, 4, 2, 2), expected)

    def test_wrong_output_demotes_with_warning(self):
        ops = _reference_like_ops()
        ops["chunk_addresses"] = _wrong_chunk_addresses
        _install_fake(lambda: ops)
        kernels.set_backend("auto")
        levels = np.array([[1, 0, 3, 2]], dtype=np.int64)
        with pytest.warns(KernelBackendWarning, match="demoted to numpy"):
            result = kernels.chunk_addresses(levels, 4, 2, 2)
        # The demoted op serves reference bits; untouched ops keep the fake.
        assert np.array_equal(result, REFERENCE_OPS["chunk_addresses"](levels, 4, 2, 2, 0))
        active = kernels.active_backends()
        assert active["chunk_addresses"] == "numpy"
        assert active["counter_observe"] == "fake"
        assert "chunk_addresses" in kernels.demotions()
        assert "fake" in kernels.demotions()["chunk_addresses"]

    def test_raising_kernel_demotes(self):
        ops = _reference_like_ops()

        def boom(*args, **kwargs):
            raise RuntimeError("llvm exploded")

        ops["counter_observe"] = boom
        _install_fake(lambda: ops)
        kernels.set_backend("auto")
        addresses = np.array([[0, 1], [1, 1]], dtype=np.int64)
        with pytest.warns(KernelBackendWarning, match="RuntimeError"):
            counts = kernels.counter_observe(addresses, 2, 4)
        assert np.array_equal(counts, REFERENCE_OPS["counter_observe"](addresses, 2, 4))

    def test_broken_factory_falls_back_to_numpy(self):
        def broken_factory():
            raise ImportError("no such backend")

        _install_fake(broken_factory)
        kernels.set_backend("auto")
        with pytest.warns(KernelBackendWarning, match="failed to initialise"):
            active = kernels.active_backends()
        assert set(active.values()) == {"numpy"}

    def test_wrong_dtype_is_a_mismatch(self):
        ops = _reference_like_ops()
        ops["packed_popcount"] = lambda words: REFERENCE_OPS["packed_popcount"](
            words
        ).astype(np.int32)
        _install_fake(lambda: ops)
        kernels.set_backend("auto")
        with pytest.warns(KernelBackendWarning):
            kernels.packed_popcount(np.array([3], dtype=np.uint64))
        assert kernels.active_backends()["packed_popcount"] == "numpy"

    def test_demotion_emits_telemetry_counter(self):
        ops = _reference_like_ops()
        ops["chunk_addresses"] = _wrong_chunk_addresses
        _install_fake(lambda: ops)
        kernels.set_backend("auto")
        with telemetry.enabled() as metrics, warnings.catch_warnings():
            warnings.simplefilter("ignore", KernelBackendWarning)
            kernels.chunk_addresses(np.array([[0, 1]], dtype=np.int64), 2, 1, 2)
        counters = metrics.snapshot()["counters"]
        assert counters["kernels.demoted{backend=fake,primitive=chunk_addresses}"] == 1


class TestDispatch:
    def test_unknown_op_raises(self):
        with pytest.raises(KeyError, match="unknown kernel op"):
            registry.dispatch("matmul", np.eye(2))

    def test_dispatch_counts_per_primitive_and_backend(self):
        kernels.set_backend("numpy")
        with telemetry.enabled() as metrics:
            kernels.packed_popcount(np.array([7, 8], dtype=np.uint64))
            kernels.packed_popcount(np.array([1], dtype=np.uint64))
        counters = metrics.snapshot()["counters"]
        assert counters["kernels.dispatch{backend=numpy,primitive=packed_popcount}"] == 2

    def test_explicit_numba_mode_without_numba_warns_and_serves_numpy(self):
        if numba_backend.available():
            pytest.skip("numba installed: the explicit mode resolves to it")
        kernels.set_backend("numba")
        with pytest.warns(KernelBackendWarning, match="does not provide"):
            active = kernels.active_backends()
        assert set(active.values()) == {"numpy"}

    def test_explicit_numba_mode_with_numba_serves_numba(self):
        if not numba_backend.available():
            pytest.skip("numba not installed")
        kernels.set_backend("numba")
        assert set(kernels.active_backends().values()) == {"numba"}


class TestIntrospection:
    def test_backend_impl_numpy_is_reference(self):
        for op in OP_NAMES:
            assert kernels.backend_impl(op, "numpy") is REFERENCE_OPS[op]

    def test_backend_impl_unknown_backend_is_none(self):
        assert kernels.backend_impl("chunk_addresses", "tpu") is None

    def test_backend_impl_unknown_op_raises(self):
        with pytest.raises(KeyError):
            kernels.backend_impl("matmul", "numpy")

    def test_backend_impl_refuses_unverified_kernel(self):
        ops = _reference_like_ops()
        ops["chunk_addresses"] = _wrong_chunk_addresses
        _install_fake(lambda: ops)
        assert kernels.backend_impl("chunk_addresses", "fake") is None
        assert kernels.backend_impl("counter_observe", "fake") is not None

    def test_verify_candidate_accepts_reference(self):
        for op in OP_NAMES:
            assert kernels.verify_candidate(op, REFERENCE_OPS[op]) is None

    def test_verify_candidate_reports_mismatch(self):
        reason = kernels.verify_candidate("chunk_addresses", _wrong_chunk_addresses)
        assert reason is not None and "differs" in reason

    def test_describe_is_json_ready(self):
        import json

        kernels.set_backend("auto")
        description = kernels.describe()
        json.dumps(description)
        assert description["mode"] == "auto"
        assert isinstance(description["numba_available"], bool)
        assert set(description["active"]) == set(OP_NAMES)

    def test_probe_inputs_cover_every_op(self):
        for op in OP_NAMES:
            probes = probe_inputs(op)
            assert probes, f"{op} has no verification probes"
        with pytest.raises(ValueError):
            probe_inputs("matmul")

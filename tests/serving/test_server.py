"""TCP front-end round trips: JSON-lines protocol, typed error responses."""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.serving import InferenceService, MicrobatchConfig, ServingServer


async def _request(reader, writer, payload) -> dict:
    writer.write((json.dumps(payload) + "\n").encode())
    await writer.drain()
    return json.loads(await reader.readline())


def test_server_round_trip_matches_predict(fitted_lookhd, small_dataset):
    queries = np.asarray(small_dataset.test_features, dtype=np.float64)[:8]
    expected = fitted_lookhd.predict(queries)

    async def drive():
        service = InferenceService(
            fitted_lookhd, MicrobatchConfig(max_batch=4, max_wait_ms=5.0)
        )
        async with ServingServer(service, port=0) as server:
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            responses = [
                await _request(
                    reader, writer, {"id": i, "features": queries[i].tolist()}
                )
                for i in range(queries.shape[0])
            ]
            writer.close()
            await writer.wait_closed()
        return responses

    responses = asyncio.run(drive())
    assert [r["id"] for r in responses] == list(range(8))
    np.testing.assert_array_equal(
        np.asarray([r["prediction"] for r in responses]), expected
    )


def test_server_error_responses_keep_connection_open(fitted_lookhd, small_dataset):
    query = np.asarray(small_dataset.test_features, dtype=np.float64)[0]

    async def drive():
        service = InferenceService(
            fitted_lookhd, MicrobatchConfig(max_batch=4, max_wait_ms=5.0)
        )
        async with ServingServer(service, port=0) as server:
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            # Malformed JSON, wrong shape, NaN features, missing key — each
            # answered with error "invalid", none of them kill the session.
            writer.write(b"this is not json\n")
            await writer.drain()
            broken = json.loads(await reader.readline())
            short = await _request(
                reader, writer, {"id": 1, "features": query[:-1].tolist()}
            )
            nan_row = query.tolist()
            nan_row[0] = float("nan")
            not_finite = await _request(
                reader, writer, {"id": 2, "features": nan_row}
            )
            no_features = await _request(reader, writer, {"id": 3})
            ok = await _request(
                reader, writer, {"id": 4, "features": query.tolist()}
            )
            writer.close()
            await writer.wait_closed()
        return broken, short, not_finite, no_features, ok

    broken, short, not_finite, no_features, ok = asyncio.run(drive())
    assert broken["error"] == "invalid"
    assert short["error"] == "invalid" and short["id"] == 1
    assert not_finite["error"] == "invalid" and "non-finite" in not_finite["detail"]
    assert no_features["error"] == "invalid" and no_features["id"] == 3
    assert ok["prediction"] == int(fitted_lookhd.predict(query))


def test_server_reports_closed_service(fitted_lookhd, small_dataset):
    query = np.asarray(small_dataset.test_features, dtype=np.float64)[0]

    async def drive():
        service = InferenceService(fitted_lookhd)
        server = ServingServer(service, port=0)
        await server.start()
        port = server.port
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        # Stop only the microbatcher; the TCP listener still answers and
        # must translate the typed error.
        await service.stop()
        response = await _request(
            reader, writer, {"id": 0, "features": query.tolist()}
        )
        writer.close()
        await writer.wait_closed()
        await server.stop()
        return response

    response = asyncio.run(drive())
    assert response["error"] == "closed"


def test_port_property_requires_start(fitted_lookhd):
    server = ServingServer(InferenceService(fitted_lookhd))
    with pytest.raises(RuntimeError, match="not started"):
        server.port


class TestFleetProtocol:
    """Tenant routing + admin ops over a registry-backed service."""

    @pytest.fixture
    def registry(self, fitted_lookhd):
        from repro.serving import ModelRegistry

        fleet = ModelRegistry()
        fleet.publish("edge-7", fitted_lookhd)
        return fleet

    def test_tenant_predict_and_x_alias(self, registry, fitted_lookhd, small_dataset):
        query = np.asarray(small_dataset.test_features, dtype=np.float64)[0]
        expected = int(fitted_lookhd.predict(query))

        async def drive():
            service = InferenceService(
                registry=registry, config=MicrobatchConfig(max_wait_ms=5.0)
            )
            async with ServingServer(service, port=0) as server:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                verbose = await _request(
                    reader,
                    writer,
                    {"id": 0, "op": "predict", "tenant": "edge-7",
                     "features": query.tolist()},
                )
                compact = await _request(
                    reader, writer, {"id": 1, "tenant": "edge-7", "x": query.tolist()}
                )
                unknown = await _request(
                    reader, writer, {"id": 2, "tenant": "ghost", "x": query.tolist()}
                )
                bad_tenant = await _request(
                    reader, writer, {"id": 3, "tenant": 7, "x": query.tolist()}
                )
                writer.close()
                await writer.wait_closed()
            return verbose, compact, unknown, bad_tenant

        verbose, compact, unknown, bad_tenant = asyncio.run(drive())
        assert verbose == {"id": 0, "prediction": expected, "tenant": "edge-7"}
        assert compact == {"id": 1, "prediction": expected, "tenant": "edge-7"}
        assert unknown["error"] == "unknown_tenant" and "edge-7" in unknown["detail"]
        assert bad_tenant["error"] == "invalid"

    def test_admin_ops_publish_list_evict(
        self, registry, fitted_lookhd, small_dataset, tmp_path
    ):
        from repro.lookhd.persistence import save_classifier

        query = np.asarray(small_dataset.test_features, dtype=np.float64)[0]
        expected = int(fitted_lookhd.predict(query))
        model_path = str(save_classifier(fitted_lookhd, tmp_path / "edge7.npz"))

        async def drive():
            service = InferenceService(
                registry=registry, config=MicrobatchConfig(max_wait_ms=5.0)
            )
            async with ServingServer(service, port=0) as server:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                listed = await _request(reader, writer, {"id": 0, "op": "list"})
                published = await _request(
                    reader,
                    writer,
                    {"id": 1, "op": "publish", "tenant": "edge-7",
                     "path": model_path},
                )
                served = await _request(
                    reader, writer, {"id": 2, "tenant": "edge-7", "x": query.tolist()}
                )
                evicted = await _request(
                    reader, writer, {"id": 3, "op": "evict", "tenant": "edge-7"}
                )
                # An evicted tenant still serves (lazy rebuild, bit-identical).
                after_evict = await _request(
                    reader, writer, {"id": 4, "tenant": "edge-7", "x": query.tolist()}
                )
                bad_path = await _request(
                    reader,
                    writer,
                    {"id": 5, "op": "publish", "tenant": "edge-7",
                     "path": str(tmp_path / "missing.npz")},
                )
                health = await _request(reader, writer, {"id": 6, "op": "health"})
                writer.close()
                await writer.wait_closed()
            return listed, published, served, evicted, after_evict, bad_path, health

        listed, published, served, evicted, after_evict, bad_path, health = (
            asyncio.run(drive())
        )
        assert listed["fleet"]["tenants"]["edge-7"]["version"] == 1
        assert published["tenant"] == "edge-7" and published["version"] == 2
        assert published["bound"] is True and published["table_bytes"] > 0
        assert served["prediction"] == expected  # same artifact: bit-identical
        assert evicted == {"id": 3, "tenant": "edge-7", "released": True}
        assert after_evict["prediction"] == expected
        assert bad_path["error"] == "invalid"
        assert health["fleet"]["tenants"]["edge-7"]["version"] == 2
        assert health["fleet"]["publishes"] == 2

    def test_admin_ops_require_registry(self, fitted_lookhd):
        async def drive():
            service = InferenceService(
                fitted_lookhd, MicrobatchConfig(max_wait_ms=5.0)
            )
            async with ServingServer(service, port=0) as server:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                response = await _request(reader, writer, {"id": 0, "op": "list"})
                unknown_op = await _request(reader, writer, {"id": 1, "op": "dance"})
                writer.close()
                await writer.wait_closed()
            return response, unknown_op

        response, unknown_op = asyncio.run(drive())
        assert response["error"] == "invalid" and "--models" in response["detail"]
        assert unknown_op["error"] == "invalid" and "dance" in unknown_op["detail"]


class TestGracefulDrain:
    """The ``repro serve`` SIGTERM path: stop accepting, answer every
    admitted request, and survive admin traffic issued mid-drain."""

    def test_sigterm_drains_in_flight_fleet_traffic(
        self, fitted_lookhd, small_dataset, tmp_path
    ):
        import os
        import signal

        from repro.lookhd.classifier import LookHDClassifier, LookHDConfig
        from repro.lookhd.persistence import save_classifier
        from repro.serving import FLUSH_DRAIN, ModelRegistry

        other = LookHDClassifier(
            LookHDConfig(dim=512, levels=4, chunk_size=4, seed=11)
        )
        other.fit(small_dataset.train_features, small_dataset.train_labels)
        models = {"alpha": fitted_lookhd, "beta": other}
        queries = np.asarray(small_dataset.test_features, dtype=np.float64)[:6]
        expected = {t: clf.predict(queries) for t, clf in models.items()}
        # The mid-drain publish re-ships the same artifact, so tenant alpha
        # stays bit-identical no matter when the version flip lands
        # relative to the drain flush (dispatch-time binding).
        artifact = str(save_classifier(fitted_lookhd, tmp_path / "alpha_v2.npz"))

        async def drive():
            registry = ModelRegistry()
            for tenant, clf in models.items():
                registry.publish(tenant, clf)
            # max_wait far beyond the test horizon: every request is
            # admitted and *parks* — only the drain flush can answer it.
            service = InferenceService(
                registry=registry,
                config=MicrobatchConfig(max_batch=64, max_wait_ms=2_000.0),
            )
            server = await ServingServer(service, port=0).start()
            shutdown = asyncio.Event()
            loop = asyncio.get_running_loop()
            loop.add_signal_handler(signal.SIGTERM, shutdown.set)  # CLI wiring
            try:
                async def one(tenant, row):
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", server.port
                    )
                    try:
                        return await _request(
                            reader, writer, {"tenant": tenant, "x": row.tolist()}
                        )
                    finally:
                        writer.close()
                        await writer.wait_closed()

                tasks = [
                    asyncio.create_task(one(tenant, row))
                    for tenant in models
                    for row in queries
                ]
                deadline = loop.time() + 10.0
                while service.queue_depth < len(tasks):
                    assert loop.time() < deadline, "requests never queued"
                    await asyncio.sleep(0.01)

                admin = await asyncio.open_connection("127.0.0.1", server.port)
                os.kill(os.getpid(), signal.SIGTERM)
                await shutdown.wait()

                async def publish_mid_drain():
                    response = await _request(
                        admin[0], admin[1],
                        {"op": "publish", "tenant": "alpha", "path": artifact},
                    )
                    admin[1].close()
                    await admin[1].wait_closed()
                    return response

                _, published = await asyncio.gather(
                    server.stop(), publish_mid_drain()
                )
                responses = await asyncio.gather(*tasks)
                return responses, published, service
            finally:
                loop.remove_signal_handler(signal.SIGTERM)

        responses, published, service = asyncio.run(drive())
        # Every admitted request was answered with a real prediction —
        # the drain never drops, rejects, or errors in-flight traffic.
        by_tenant = {
            tenant: np.asarray(
                [r["prediction"] for r in responses if r.get("tenant") == tenant]
            )
            for tenant in ("alpha", "beta")
        }
        for tenant, values in by_tenant.items():
            np.testing.assert_array_equal(values, expected[tenant])
        assert all("error" not in r for r in responses)
        # The mid-drain publish went through atomically (v1 -> v2).
        assert published["tenant"] == "alpha" and published["version"] == 2
        stats = service.request_stats()
        assert stats["dropped"] == 0
        assert stats["completed"] == len(responses)
        # The parked batch was flushed by the drain itself, not by the
        # 2-second max_wait timer expiring mid-stop.
        assert FLUSH_DRAIN in service.flush_reasons

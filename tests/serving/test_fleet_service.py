"""Fleet-mode InferenceService: routing, quotas, fairness, dispatch binding.

Also home to two serving-boundary regression suites: the exact-boundary
admission-control test (peak queue depth can never exceed the bound, no
matter how many coroutines submit in one event-loop tick) and the
online-learner staleness test (``partial_fit`` must bump the snapshot
version so fused score tables rebuild instead of serving stale answers).
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.lookhd.classifier import LookHDClassifier, LookHDConfig
from repro.lookhd.inference import FusedInferenceEngine
from repro.lookhd.online import OnlineLookHD
from repro.serving import (
    InferenceService,
    MicrobatchConfig,
    ModelRegistry,
    ServiceOverloadedError,
    TenantOverloadedError,
    UnknownTenantError,
)


def run(coro):
    return asyncio.run(coro)


def _fit(dataset, seed):
    clf = LookHDClassifier(LookHDConfig(dim=512, levels=4, chunk_size=4, seed=seed))
    clf.fit(dataset.train_features, dataset.train_labels)
    return clf


@pytest.fixture(scope="module")
def tenant_models(small_dataset):
    return {"alpha": _fit(small_dataset, 3), "beta": _fit(small_dataset, 11)}


@pytest.fixture
def registry(tenant_models):
    fleet = ModelRegistry()
    for tenant, clf in tenant_models.items():
        fleet.publish(tenant, clf)
    return fleet


@pytest.fixture
def queries(small_dataset):
    return np.asarray(small_dataset.test_features, dtype=np.float64)


class _GatedClassifier:
    """Blocks predict on a threading event so a test can hold a batch open."""

    def __init__(self, inner):
        self.inner = inner
        self.started = threading.Event()
        self.release = threading.Event()
        self.calls = 0

    def predict(self, batch):
        self.calls += 1
        self.started.set()
        assert self.release.wait(timeout=10.0), "test never released the batch"
        return self.inner.predict(batch)


def test_requires_exactly_one_of_classifier_or_registry(tenant_models, registry):
    with pytest.raises(ValueError, match="exactly one"):
        InferenceService()
    with pytest.raises(ValueError, match="exactly one"):
        InferenceService(tenant_models["alpha"], registry=registry)
    service = InferenceService(registry=registry)
    assert service.n_features is None  # width is per tenant in fleet mode


def test_routes_each_request_to_its_tenants_model(tenant_models, registry, queries):
    rows = queries[:12]
    expected = {t: clf.predict(rows) for t, clf in tenant_models.items()}

    async def drive():
        config = MicrobatchConfig(max_batch=8, max_wait_ms=20.0)
        async with InferenceService(registry=registry, config=config) as service:
            tasks = []
            for index in range(rows.shape[0]):
                for tenant in ("alpha", "beta"):
                    tasks.append(service.predict(rows[index], tenant=tenant))
            flat = await asyncio.gather(*tasks)
            return flat, service.request_stats()

    flat, stats = run(drive())
    got = {
        "alpha": np.asarray(flat[0::2], dtype=np.int64),
        "beta": np.asarray(flat[1::2], dtype=np.int64),
    }
    for tenant in ("alpha", "beta"):
        np.testing.assert_array_equal(got[tenant], expected[tenant])
        assert stats["tenants"][tenant]["completed"] == 12
        assert stats["tenants"][tenant]["dropped"] == 0


def test_unknown_tenant_rejected_before_queueing(registry, queries):
    async def drive():
        async with InferenceService(registry=registry) as service:
            with pytest.raises(UnknownTenantError):
                await service.predict(queries[0], tenant="ghost")
            return service.request_stats()

    stats = run(drive())
    assert stats["admitted"] == 0


def test_single_model_service_rejects_tenants(tenant_models, queries):
    async def drive():
        async with InferenceService(tenant_models["alpha"]) as service:
            with pytest.raises(ValueError, match="no tenant"):
                await service.predict(queries[0], tenant="alpha")
            # The implicit default tenant is accepted by name.
            return await service.predict(
                queries[0], tenant=InferenceService.DEFAULT_TENANT
            )

    assert run(drive()) == tenant_models["alpha"].predict(queries[0])


def test_tenant_quota_is_typed_and_per_tenant(registry, queries):
    async def drive():
        config = MicrobatchConfig(
            max_batch=64, max_wait_ms=10_000.0, max_queue_depth=64, tenant_quota=2
        )
        service = InferenceService(registry=registry, config=config)
        await service.start()
        pending = [
            asyncio.ensure_future(service.predict(queries[i], tenant="alpha"))
            for i in range(2)
        ]
        await asyncio.sleep(0)
        with pytest.raises(TenantOverloadedError) as excinfo:
            await service.predict(queries[2], tenant="alpha")
        # Another tenant still has its own quota under the global bound.
        pending.append(
            asyncio.ensure_future(service.predict(queries[0], tenant="beta"))
        )
        await asyncio.sleep(0)
        stats_mid = service.request_stats()
        await service.stop()  # drains the parked requests
        await asyncio.gather(*pending)
        return excinfo.value, stats_mid, service.request_stats()

    error, stats_mid, stats = run(drive())
    assert isinstance(error, ServiceOverloadedError)
    assert error.tenant == "alpha"
    assert error.tenant_quota == 2
    assert error.queue_depth == 2
    assert stats_mid["tenants"]["alpha"]["rejected"] == 1
    assert stats_mid["tenants"]["beta"]["admitted"] == 1
    assert stats["dropped"] == 0


def test_admission_boundary_never_exceeds_queue_depth(tenant_models, queries):
    """Regression: N coroutines admitted in one tick cannot overshoot the bound.

    Admission must be an atomic check-and-append — if the depth check and
    the enqueue could interleave across awaiters, a burst arriving in one
    event-loop tick would overshoot ``max_queue_depth``.  The always-on
    ``peak_queue_depth`` watermark is the witness.
    """
    clf = tenant_models["alpha"]

    async def drive():
        config = MicrobatchConfig(max_batch=4, max_queue_depth=4, max_wait_ms=5.0)
        service = InferenceService(clf, config)
        await service.start()
        # 32 submissions in the same tick: exactly 4 slots exist.
        pending = [
            asyncio.ensure_future(service.predict(queries[i % 16]))
            for i in range(32)
        ]
        results = await asyncio.gather(*pending, return_exceptions=True)
        await service.stop()
        return results, service.request_stats()

    results, stats = run(drive())
    rejected = [r for r in results if isinstance(r, ServiceOverloadedError)]
    completed = [r for r in results if isinstance(r, np.int64)]
    assert stats["peak_queue_depth"] == 4  # never exceeded max_queue_depth
    assert len(rejected) == 28 and all(r.queue_depth == 4 for r in rejected)
    assert len(completed) == 4
    assert stats["admitted"] == 4 and stats["rejected"] == 28
    assert stats["dropped"] == 0


def test_round_robin_flush_alternates_ready_tenants(registry, queries):
    """Two tenants with full batches waiting each get one flush per cycle."""

    async def drive():
        config = MicrobatchConfig(max_batch=2, max_wait_ms=10_000.0)
        service = InferenceService(registry=registry, config=config)
        order: list[str] = []
        original = service._dispatch

        async def spy(batch, reason, tenant):
            order.append(tenant)
            await original(batch, reason, tenant)

        service._dispatch = spy
        await service.start()
        pending = []
        for index in range(4):
            for tenant in ("alpha", "beta"):
                pending.append(
                    asyncio.ensure_future(
                        service.predict(queries[index], tenant=tenant)
                    )
                )
        await asyncio.gather(*pending)
        await service.stop()
        return order

    order = run(drive())
    assert len(order) == 4  # 8 requests, batches of 2
    assert sorted(order) == ["alpha", "alpha", "beta", "beta"]
    # Strict alternation: with both queues full the whole time, no tenant
    # is served twice while the other is ready.
    assert all(order[i] != order[i + 1] for i in range(len(order) - 1))


def test_hot_swap_binds_at_dispatch_time(small_dataset, registry, queries):
    """A batch in flight finishes on the old record; the next batch gets the new."""
    rows = queries[:4]
    expected = registry.record("alpha").classifier.predict(rows)
    gated = _GatedClassifier(registry.record("alpha").classifier)
    registry.publish("alpha", gated, n_features=rows.shape[1])
    replacement = _fit(small_dataset, 3)  # bit-identical geometry, seed 3

    async def drive():
        config = MicrobatchConfig(max_batch=2, max_wait_ms=5.0, dispatch="thread")
        service = InferenceService(registry=registry, config=config)
        await service.start()
        pending = [
            asyncio.ensure_future(service.predict(rows[i], tenant="alpha"))
            for i in range(2)
        ]
        while not gated.started.is_set():
            await asyncio.sleep(0.001)
        # First batch is inside the (held-open) old model.  Queue two more
        # requests, then publish the replacement: the flip must not touch
        # the in-flight batch, and the queued batch must resolve the new
        # record at dispatch time.
        pending += [
            asyncio.ensure_future(service.predict(rows[i], tenant="alpha"))
            for i in range(2, 4)
        ]
        version_before = registry.record("alpha").version
        await asyncio.get_running_loop().run_in_executor(
            None, registry.publish, "alpha", replacement
        )
        gated.release.set()
        predictions = await asyncio.gather(*pending)
        await service.stop()
        return predictions, version_before, service.request_stats()

    predictions, version_before, stats = run(drive())
    assert registry.record("alpha").version == version_before + 1
    assert gated.calls == 1  # only the in-flight batch ran on the old model
    np.testing.assert_array_equal(np.asarray(predictions, dtype=np.int64), expected)
    assert stats["completed"] == 4 and stats["dropped"] == 0


class TestOnlineSnapshotStaleness:
    """``partial_fit`` must bump the snapshot version counter.

    A fused score table built over ``OnlineLookHD.class_model()`` caches by
    model version; if an online update did not move the counter, the table
    would keep serving the pre-update weights forever.
    """

    def test_partial_fit_bumps_snapshot_version(self, small_dataset, tenant_models):
        online = OnlineLookHD(
            tenant_models["alpha"].encoder, small_dataset.n_classes
        )
        online.partial_fit(
            small_dataset.train_features[:40], small_dataset.train_labels[:40]
        )
        snapshot = online.class_model()
        version_before = snapshot.version
        online.partial_fit(
            small_dataset.train_features[40:80], small_dataset.train_labels[40:80]
        )
        assert snapshot.version > version_before

    def test_interleaved_partial_fit_serves_fresh_through_service(
        self, small_dataset, tenant_models
    ):
        encoder = tenant_models["alpha"].encoder
        online = OnlineLookHD(encoder, small_dataset.n_classes)
        half = small_dataset.n_train // 2
        online.partial_fit(
            small_dataset.train_features[:half], small_dataset.train_labels[:half]
        )
        engine = FusedInferenceEngine(encoder, online.class_model())
        assert engine.enabled

        class FusedOnline:
            """The live-served shape: fused table over the online snapshot."""

            def __init__(self):
                self.encoder = encoder
                self.predict = engine.predict

        rows = np.asarray(small_dataset.test_features, dtype=np.float64)[:16]

        async def drive():
            config = MicrobatchConfig(max_batch=8, max_wait_ms=20.0)
            async with InferenceService(FusedOnline(), config) as service:
                before = await asyncio.gather(
                    *(service.predict(row) for row in rows)
                )
                # Mid-session online update between served batches.
                online.partial_fit(
                    small_dataset.train_features[half:],
                    small_dataset.train_labels[half:],
                )
                after = await asyncio.gather(
                    *(service.predict(row) for row in rows)
                )
                return np.asarray(before, dtype=np.int64), np.asarray(
                    after, dtype=np.int64
                )

        before, after = run(drive())
        # Oracles: fresh engines over snapshots of each state.  The served
        # answers must track the update — a stale cached table would keep
        # returning `before`-state scores after the partial_fit.
        fresh_after = FusedInferenceEngine(encoder, online.class_model())
        np.testing.assert_array_equal(after, fresh_after.predict(rows))
        assert engine._built_version == online.class_model().version

"""Microbatcher behaviour: coalescing, backpressure, drain, bit-identity.

No pytest-asyncio in the toolchain; each test drives its own event loop
through ``asyncio.run``.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro import telemetry
from repro.serving import (
    FLUSH_DRAIN,
    FLUSH_MAX_BATCH,
    FLUSH_MAX_WAIT,
    InferenceService,
    MicrobatchConfig,
    ServiceClosedError,
    ServiceOverloadedError,
    ServingError,
)


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def queries(small_dataset):
    return np.asarray(small_dataset.test_features, dtype=np.float64)


def test_config_validation():
    with pytest.raises(ValueError, match="max_batch"):
        MicrobatchConfig(max_batch=0)
    with pytest.raises(ValueError, match="max_wait_ms"):
        MicrobatchConfig(max_wait_ms=0.0)
    with pytest.raises(ValueError, match="max_queue_depth"):
        MicrobatchConfig(max_batch=64, max_queue_depth=32)
    with pytest.raises(ValueError, match="dispatch"):
        MicrobatchConfig(dispatch="process")


def test_requires_encoder_or_explicit_width():
    class Bare:
        def predict(self, batch):  # pragma: no cover - never dispatched
            return np.zeros(batch.shape[0], dtype=np.int64)

    with pytest.raises(ValueError, match="n_features"):
        InferenceService(Bare())
    service = InferenceService(Bare(), n_features=12)
    assert service.n_features == 12


@pytest.mark.parametrize("dispatch", ["inline", "thread"])
def test_batched_predictions_bit_identical_to_single(fitted_lookhd, queries, dispatch):
    expected = fitted_lookhd.predict(queries)

    async def drive():
        config = MicrobatchConfig(max_batch=16, max_wait_ms=50.0, dispatch=dispatch)
        async with InferenceService(fitted_lookhd, config) as service:
            return await asyncio.gather(
                *(service.predict(row) for row in queries)
            )

    predictions = run(drive())
    assert all(isinstance(p, np.int64) for p in predictions)
    np.testing.assert_array_equal(np.asarray(predictions, dtype=np.int64), expected)


def test_coalesces_concurrent_requests_into_batches(fitted_lookhd, queries):
    async def drive():
        config = MicrobatchConfig(max_batch=8, max_wait_ms=200.0)
        async with InferenceService(fitted_lookhd, config) as service:
            await asyncio.gather(*(service.predict(row) for row in queries[:32]))
            return service.request_stats(), dict(service.flush_reasons)

    stats, reasons = run(drive())
    assert stats["completed"] == 32
    # 32 concurrent awaiters against max_batch=8 must coalesce: far fewer
    # flushes than requests, and (given the generous max_wait) at least one
    # flush triggered by a full batch.
    assert stats["batches"] <= 8
    assert reasons.get(FLUSH_MAX_BATCH, 0) >= 1


def test_max_wait_flushes_partial_batch(fitted_lookhd, queries):
    async def drive():
        config = MicrobatchConfig(max_batch=64, max_wait_ms=5.0)
        async with InferenceService(fitted_lookhd, config) as service:
            prediction = await service.predict(queries[0])
            return prediction, dict(service.flush_reasons)

    prediction, reasons = run(drive())
    assert prediction == fitted_lookhd.predict(queries[0])
    assert reasons == {FLUSH_MAX_WAIT: 1}


def test_stop_drains_admitted_requests(fitted_lookhd, queries):
    async def drive():
        config = MicrobatchConfig(max_batch=64, max_wait_ms=10_000.0)
        service = InferenceService(fitted_lookhd, config)
        await service.start()
        # Park requests without awaiting them, then stop: drain must answer
        # every one (flush reason "drain"), long before the 10 s deadline.
        pending = [
            asyncio.ensure_future(service.predict(row)) for row in queries[:5]
        ]
        await asyncio.sleep(0)
        await service.stop()
        predictions = await asyncio.gather(*pending)
        return predictions, service.request_stats(), dict(service.flush_reasons)

    predictions, stats, reasons = run(drive())
    np.testing.assert_array_equal(
        np.asarray(predictions), fitted_lookhd.predict(queries[:5])
    )
    assert stats["dropped"] == 0
    assert reasons.get(FLUSH_DRAIN, 0) >= 1


def test_predict_after_stop_raises_closed(fitted_lookhd, queries):
    async def drive():
        service = InferenceService(fitted_lookhd)
        await service.start()
        await service.stop()
        with pytest.raises(ServiceClosedError):
            await service.predict(queries[0])

    run(drive())


def test_predict_without_start_raises_closed(fitted_lookhd, queries):
    async def drive():
        with pytest.raises(ServiceClosedError):
            await InferenceService(fitted_lookhd).predict(queries[0])

    run(drive())


class _GatedClassifier:
    """Blocks predict on a threading event so a test can hold a batch open."""

    def __init__(self, inner):
        import threading

        self.inner = inner
        self.started = threading.Event()
        self.release = threading.Event()

    def predict(self, batch):
        self.started.set()
        assert self.release.wait(timeout=10.0), "test never released the batch"
        return self.inner.predict(batch)


def test_admission_control_rejects_beyond_queue_depth(fitted_lookhd, queries):
    async def drive():
        gated = _GatedClassifier(fitted_lookhd)
        config = MicrobatchConfig(
            max_batch=2, max_queue_depth=2, max_wait_ms=5.0, dispatch="thread"
        )
        service = InferenceService(gated, config, n_features=queries.shape[1])
        await service.start()
        pending = [
            asyncio.ensure_future(service.predict(queries[i])) for i in range(2)
        ]
        # Wait for the first batch to reach the (held-open) worker thread,
        # then fill the queue back to max_queue_depth behind it.
        while not gated.started.is_set():
            await asyncio.sleep(0.001)
        pending += [
            asyncio.ensure_future(service.predict(queries[i])) for i in range(2, 4)
        ]
        await asyncio.sleep(0.01)
        assert service.queue_depth == 2
        with pytest.raises(ServiceOverloadedError) as excinfo:
            await service.predict(queries[4])
        rejected_stats = service.request_stats()
        gated.release.set()
        predictions = await asyncio.gather(*pending)
        await service.stop()
        return excinfo.value, rejected_stats, service.request_stats(), predictions

    error, rejected_stats, final_stats, predictions = run(drive())
    assert error.queue_depth == 2
    assert error.max_queue_depth == 2
    assert isinstance(error, ServingError)
    assert rejected_stats["rejected"] == 1
    assert final_stats["completed"] == 4
    assert final_stats["dropped"] == 0
    np.testing.assert_array_equal(
        np.asarray(predictions), fitted_lookhd.predict(queries[:4])
    )


def test_rejects_malformed_requests_eagerly(fitted_lookhd, queries):
    async def drive():
        async with InferenceService(fitted_lookhd) as service:
            with pytest.raises(ValueError, match="1-D"):
                await service.predict(queries[:2])
            with pytest.raises(ValueError, match="features per request"):
                await service.predict(queries[0][:-1])

    run(drive())


def test_non_finite_request_raises_without_poisoning_batch(fitted_lookhd, queries):
    bad = queries[0].copy()
    bad[3] = np.nan

    async def drive():
        config = MicrobatchConfig(max_batch=8, max_wait_ms=20.0)
        async with InferenceService(fitted_lookhd, config) as service:
            futures = [
                asyncio.ensure_future(service.predict(row)) for row in queries[:4]
            ]
            bad_future = asyncio.ensure_future(service.predict(bad))
            good = await asyncio.gather(*futures)
            with pytest.raises(ValueError, match="non-finite"):
                await bad_future
            return good, service.request_stats()

    good, stats = run(drive())
    np.testing.assert_array_equal(
        np.asarray(good), fitted_lookhd.predict(queries[:4])
    )
    # The NaN request is accounted as failed, never dropped.
    assert stats["failed"] == 1
    assert stats["dropped"] == 0


def test_predict_exception_fans_out_as_serving_error(queries):
    class Exploding:
        n_features = queries.shape[1]

        def predict(self, batch):
            raise RuntimeError("kaboom")

    async def drive():
        service = InferenceService(
            Exploding(), MicrobatchConfig(max_wait_ms=5.0), n_features=queries.shape[1]
        )
        async with service:
            with pytest.raises(ServingError, match="kaboom"):
                await service.predict(queries[0])
            return service.request_stats()

    stats = run(drive())
    assert stats["failed"] == 1
    assert stats["dropped"] == 0


def test_telemetry_records_batch_granular_metrics(fitted_lookhd, queries):
    async def drive(service):
        async with service:
            await asyncio.gather(*(service.predict(row) for row in queries[:24]))

    with telemetry.enabled() as registry:
        service = InferenceService(
            fitted_lookhd, MicrobatchConfig(max_batch=8, max_wait_ms=100.0)
        )
        run(drive(service))
        snapshot = registry.snapshot()

    histograms = snapshot["histograms"]
    assert histograms["serving.batch.size"]["count"] == service.batches
    assert histograms["serving.queue.wait_seconds"]["count"] == 24
    assert histograms["serving.latency_seconds"]["count"] == 24
    assert snapshot["counters"]["serving.requests.completed"] == 24
    flushes = sum(
        value
        for name, value in snapshot["counters"].items()
        if name.startswith("serving.batch.flushes")
    )
    assert flushes == service.batches
    assert "serving.batch.predict_seconds" in snapshot["timers"]
    telemetry.validate_snapshot(snapshot)


def test_stats_stay_available_with_telemetry_disabled(fitted_lookhd, queries):
    async def drive():
        async with InferenceService(
            fitted_lookhd, MicrobatchConfig(max_batch=4, max_wait_ms=20.0)
        ) as service:
            await asyncio.gather(*(service.predict(row) for row in queries[:12]))
            return service.request_stats()

    assert not telemetry.is_enabled()
    stats = run(drive())
    assert stats["admitted"] == stats["completed"] == 12
    assert stats["dropped"] == 0
    assert stats["batches"] >= 1

"""Serving resilience: deadlines, health probe, disconnect accounting."""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.resilience import DeadlineExceededError, IntegrityGuard, Scrubber
from repro.serving import InferenceService, MicrobatchConfig, ServingServer


async def _request(reader, writer, payload) -> dict:
    writer.write((json.dumps(payload) + "\n").encode())
    await writer.drain()
    return json.loads(await reader.readline())


class TestDeadlines:
    def test_config_validates_deadline(self):
        with pytest.raises(ValueError, match="deadline_ms"):
            MicrobatchConfig(deadline_ms=0.0)
        assert MicrobatchConfig(deadline_ms=5.0).deadline_ms == 5.0

    def test_expired_request_fails_typed_before_the_model(
        self, fitted_lookhd, small_dataset
    ):
        sample = np.asarray(small_dataset.test_features[0], dtype=np.float64)

        async def drive():
            # max_wait holds the batch long past the deadline, so expiry at
            # flush time is deterministic.
            service = InferenceService(
                fitted_lookhd, MicrobatchConfig(max_batch=64, max_wait_ms=30.0)
            )
            async with service:
                with pytest.raises(DeadlineExceededError) as excinfo:
                    await service.predict(sample, deadline_ms=0.01)
            assert excinfo.value.budget_seconds == pytest.approx(0.01 / 1_000)
            return service

        service = asyncio.run(drive())
        assert service.expired == 1
        assert service.batches == 0  # the model never ran
        stats = service.request_stats()
        assert stats["expired"] == 1
        assert stats["dropped"] == 0

    def test_config_default_deadline_applies(self, fitted_lookhd, small_dataset):
        sample = np.asarray(small_dataset.test_features[0], dtype=np.float64)

        async def drive():
            service = InferenceService(
                fitted_lookhd,
                MicrobatchConfig(max_batch=64, max_wait_ms=30.0, deadline_ms=0.01),
            )
            async with service:
                with pytest.raises(DeadlineExceededError):
                    await service.predict(sample)

        asyncio.run(drive())

    def test_generous_deadline_answers_normally(self, fitted_lookhd, small_dataset):
        sample = np.asarray(small_dataset.test_features[0], dtype=np.float64)
        expected = fitted_lookhd.predict(sample[np.newaxis, :])[0]

        async def drive():
            service = InferenceService(
                fitted_lookhd, MicrobatchConfig(max_batch=4, max_wait_ms=1.0)
            )
            async with service:
                return await service.predict(sample, deadline_ms=10_000.0)

        assert asyncio.run(drive()) == expected

    def test_invalid_per_request_deadline_rejected(self, fitted_lookhd, small_dataset):
        sample = np.asarray(small_dataset.test_features[0], dtype=np.float64)

        async def drive():
            service = InferenceService(fitted_lookhd, MicrobatchConfig())
            async with service:
                with pytest.raises(ValueError, match="deadline_ms"):
                    await service.predict(sample, deadline_ms=-1.0)

        asyncio.run(drive())

    def test_wire_deadline_maps_to_error_code(self, fitted_lookhd, small_dataset):
        features = list(map(float, small_dataset.test_features[0]))

        async def drive():
            service = InferenceService(
                fitted_lookhd, MicrobatchConfig(max_batch=64, max_wait_ms=30.0)
            )
            async with ServingServer(service, port=0) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                response = await _request(
                    reader,
                    writer,
                    {"id": 1, "features": features, "deadline_ms": 0.01},
                )
                writer.close()
                return response

        response = asyncio.run(drive())
        assert response["error"] == "deadline"
        assert "deadline" in response["detail"]


class TestHealthProbe:
    def test_health_without_scrubber(self, fitted_lookhd, small_dataset):
        features = list(map(float, small_dataset.test_features[0]))

        async def drive():
            service = InferenceService(fitted_lookhd, MicrobatchConfig())
            async with ServingServer(service, port=0) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                await _request(reader, writer, {"id": 1, "features": features})
                health = await _request(reader, writer, {"id": 2, "op": "health"})
                writer.close()
                return health

        health = asyncio.run(drive())
        assert health["status"] == "ok"
        assert health["running"] is True
        assert health["scrub"] is None
        assert health["requests"]["completed"] == 1
        assert health["requests"]["dropped"] == 0

    def test_health_reports_scrub_status(self, fitted_lookhd):
        scrubber = Scrubber(IntegrityGuard(fitted_lookhd), blocks_per_tick=4)

        async def drive():
            service = InferenceService(fitted_lookhd, MicrobatchConfig())
            server = ServingServer(
                service, port=0, scrubber=scrubber, scrub_interval=0.005
            )
            async with server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                for _ in range(200):
                    health = await _request(reader, writer, {"op": "health"})
                    if health["scrub"]["ticks"] > 0:
                        break
                    await asyncio.sleep(0.01)
                writer.close()
                return health

        health = asyncio.run(drive())
        assert health["scrub"]["ticks"] > 0
        assert health["scrub"]["enabled"] is True
        assert health["status"] == "ok"

    def test_scrub_interval_validated(self, fitted_lookhd):
        service = InferenceService(fitted_lookhd, MicrobatchConfig())
        with pytest.raises(ValueError, match="scrub_interval"):
            ServingServer(service, scrub_interval=0.0)


class TestDisconnect:
    def test_disconnect_mid_request_accounted_service_drains(
        self, fitted_lookhd, small_dataset
    ):
        features = list(map(float, small_dataset.test_features[0]))

        async def drive():
            service = InferenceService(
                fitted_lookhd, MicrobatchConfig(max_batch=8, max_wait_ms=5.0)
            )
            async with ServingServer(service, port=0) as server:
                # Fire a request and hang up before the batch flushes.
                _, rude_writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                rude_writer.write(
                    (json.dumps({"id": 1, "features": features}) + "\n").encode()
                )
                await rude_writer.drain()
                rude_writer.close()
                await asyncio.sleep(0.1)
                # The service is undisturbed: a polite client still gets
                # answers and the accounting balances.
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                response = await _request(
                    reader, writer, {"id": 2, "features": features}
                )
                health = await _request(reader, writer, {"op": "health"})
                writer.close()
                return response, health

        response, health = asyncio.run(drive())
        assert "prediction" in response
        assert health["cancelled"] == 1
        assert health["requests"]["dropped"] == 0

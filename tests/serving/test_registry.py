"""ModelRegistry semantics: versioned hot-swap, LRU byte budget, lazy rebind."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import telemetry
from repro.lookhd.classifier import LookHDClassifier, LookHDConfig
from repro.serving import ModelRegistry, UnknownTenantError


def _fit(dataset, seed):
    clf = LookHDClassifier(LookHDConfig(dim=512, levels=4, chunk_size=4, seed=seed))
    clf.fit(dataset.train_features, dataset.train_labels)
    return clf


@pytest.fixture(scope="module")
def fleet(small_dataset):
    """Three independently-seeded models with identical table geometry."""
    return [_fit(small_dataset, seed) for seed in (3, 4, 5)]


@pytest.fixture
def queries(small_dataset):
    return np.asarray(small_dataset.test_features, dtype=np.float64)[:16]


def test_publish_versions_and_hot_swap(fleet):
    registry = ModelRegistry()
    first = registry.publish("acme", fleet[0])
    assert first.version == 1
    assert first.bound and first.table_bytes > 0
    assert len(registry) == 1 and "acme" in registry

    second = registry.publish("acme", fleet[1])
    assert second.version == 2
    assert registry.get("acme") is second
    # The superseded record is not mutated into the new one — a consumer
    # holding it keeps a consistent model — but its tables left the cache.
    assert first.version == 1
    assert not first.bound
    assert registry.publishes == 2


def test_unknown_tenant_is_typed(fleet):
    registry = ModelRegistry()
    registry.publish("alpha", fleet[0])
    with pytest.raises(UnknownTenantError) as excinfo:
        registry.get("nope")
    error = excinfo.value
    assert isinstance(error, KeyError)
    assert error.tenant == "nope"
    assert error.known == ["alpha"]
    assert "alpha" in str(error)  # KeyError repr-quoting is overridden
    for op in (registry.record, registry.evict, registry.remove):
        with pytest.raises(UnknownTenantError):
            op("nope")


def test_publish_validation(fleet):
    registry = ModelRegistry()
    with pytest.raises(ValueError, match="non-empty string"):
        registry.publish("", fleet[0])
    with pytest.raises(ValueError, match="predict"):
        registry.publish("t", object(), n_features=12)

    class NoEncoder:
        def predict(self, batch):  # pragma: no cover - never dispatched
            return np.zeros(batch.shape[0], dtype=np.int64)

    with pytest.raises(ValueError, match="n_features"):
        registry.publish("t", NoEncoder())
    record = registry.publish("t", NoEncoder(), n_features=12)
    assert record.n_features == 12
    # No cacheable tables: always "bound" at zero bytes.
    assert record.bound and record.table_bytes == 0


def test_budget_validation():
    with pytest.raises(ValueError, match="cache_budget_bytes"):
        ModelRegistry(cache_budget_bytes=0)
    with pytest.raises(ValueError, match="cache_budget_bytes"):
        ModelRegistry(cache_budget_bytes=-1)


def test_lru_eviction_exactly_at_budget(fleet):
    bytes_each = fleet[0].warm_tables()
    assert bytes_each > 0
    # Exactly two table sets fit: the boundary case — at budget is kept,
    # one byte past it evicts.
    registry = ModelRegistry(cache_budget_bytes=2 * bytes_each)
    registry.publish("t0", fleet[0])
    registry.publish("t1", fleet[1])
    assert registry.bound_bytes == 2 * bytes_each
    assert registry.evictions == 0

    registry.publish("t2", fleet[2])
    assert registry.evictions == 1
    assert not registry.record("t0").bound  # LRU victim
    assert registry.record("t0").table_bytes == 0
    assert registry.record("t1").bound
    assert registry.record("t2").bound
    assert registry.bound_bytes == 2 * bytes_each
    # Eviction releases the classifier's actual memory, not just the books.
    assert fleet[0].serving_table_bytes() == 0


def test_lru_follows_serving_recency(fleet):
    bytes_each = fleet[0].warm_tables()
    registry = ModelRegistry(cache_budget_bytes=2 * bytes_each)
    registry.publish("t0", fleet[0])
    registry.publish("t1", fleet[1])
    registry.get("t0")  # serve t0: t1 becomes least recently served
    registry.publish("t2", fleet[2])
    assert not registry.record("t1").bound
    assert registry.record("t0").bound
    assert registry.record("t2").bound


def test_lazy_rebuild_is_bit_identical(fleet, queries):
    expected = fleet[0].predict(queries)
    bytes_each = fleet[0].warm_tables()
    registry = ModelRegistry(cache_budget_bytes=bytes_each)
    registry.publish("t0", fleet[0])
    registry.publish("t1", fleet[1])  # evicts t0
    assert not registry.record("t0").bound

    record = registry.get("t0")  # serving-path resolve pays the rebuild
    assert registry.lazy_rebuilds == 1
    assert record.bound and record.table_bytes == bytes_each
    assert not registry.record("t1").bound  # budget still holds
    np.testing.assert_array_equal(record.classifier.predict(queries), expected)


def test_over_budget_tenant_serves_unbound(fleet, queries):
    expected = fleet[0].predict(queries)
    bytes_each = fleet[0].warm_tables()
    registry = ModelRegistry(cache_budget_bytes=bytes_each // 2)
    record = registry.publish("t0", fleet[0])
    # Its tables alone exceed the whole budget: registration succeeds,
    # the tables are released, and the exact fallback paths serve.
    assert not record.bound
    assert registry.bound_bytes == 0
    np.testing.assert_array_equal(
        registry.get("t0").classifier.predict(queries), expected
    )


def test_hot_swap_atomic_under_concurrent_reads(small_dataset, fleet, queries):
    """Readers racing a publisher always see a complete, correct record."""
    expected = fleet[0].predict(queries)
    # Same seed/config/data: replacements are bit-identical, so any
    # divergence a reader observes is a torn swap, not a different model.
    clone = _fit(small_dataset, 3)
    registry = ModelRegistry()
    registry.publish("t", fleet[0])

    stop = threading.Event()
    failures: list[str] = []

    def reader() -> None:
        while not stop.is_set():
            record = registry.get("t")
            predictions = record.classifier.predict(queries)
            if not np.array_equal(predictions, expected):
                failures.append(f"diverged on version {record.version}")
                return

    threads = [threading.Thread(target=reader) for _ in range(4)]
    for thread in threads:
        thread.start()
    try:
        for model in (clone, fleet[0], clone, fleet[0]):
            registry.publish("t", model)
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
    assert not failures
    assert registry.record("t").version == 5


def test_evict_and_remove(fleet):
    registry = ModelRegistry()
    registry.publish("t", fleet[0])
    assert registry.evict("t") is True
    assert registry.evict("t") is False  # already unbound
    assert not registry.record("t").bound
    registry.remove("t")
    assert "t" not in registry and len(registry) == 0


def test_describe_snapshot_and_telemetry(fleet):
    bytes_each = fleet[0].warm_tables()
    with telemetry.enabled() as metrics:
        registry = ModelRegistry(cache_budget_bytes=bytes_each)
        registry.publish("t0", fleet[0])
        registry.publish("t1", fleet[1])  # evicts t0
        registry.get("t0")  # lazy rebuild (evicts t1)
        snapshot = metrics.snapshot()

    described = registry.describe()
    assert sorted(described["tenants"]) == ["t0", "t1"]
    assert described["tenants"]["t0"] == {
        "version": 1,
        "n_features": 40,
        "bound": True,
        "table_bytes": bytes_each,
    }
    assert described["cache_budget_bytes"] == bytes_each
    assert described["bound_bytes"] == bytes_each
    assert described["publishes"] == 2
    assert described["evictions"] == 2
    assert described["lazy_rebuilds"] == 1

    counters = snapshot["counters"]
    for prefix, total in (
        ("serving.registry.publishes", 2),
        ("serving.registry.evictions", 2),
        ("serving.registry.lazy_rebuilds", 1),
    ):
        assert (
            sum(v for name, v in counters.items() if name.startswith(prefix)) == total
        )

"""Live partial_fit through the service and TCP server.

The contract under test: updates ride the per-tenant FIFO and are
flushed alone by the single collector, so they are serialized against
predict flushes; eager validation rejects bad payloads before anything
queues; models without ``partial_fit`` fail fast with a typed error; and
an admitted update is always resolved — drain included.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.lookhd.classifier import LookHDClassifier, LookHDConfig
from repro.lookhd.online import OnlineLookHD
from repro.serving import (
    FLUSH_UPDATE,
    InferenceService,
    MicrobatchConfig,
    ModelRegistry,
    ServingServer,
    UpdateNotSupportedError,
)


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def encoder(small_dataset):
    clf = LookHDClassifier(LookHDConfig(dim=512, levels=4, chunk_size=4, seed=3))
    clf.fit(small_dataset.train_features[:40], small_dataset.train_labels[:40])
    return clf.encoder


@pytest.fixture
def online(small_dataset, encoder):
    learner = OnlineLookHD(encoder, small_dataset.n_classes)
    learner.partial_fit(
        small_dataset.train_features[:120], small_dataset.train_labels[:120]
    )
    return learner


@pytest.fixture
def queries(small_dataset):
    return np.asarray(small_dataset.test_features, dtype=np.float64)


class TestServicePartialFit:
    def test_update_applies_to_live_model(self, small_dataset, online):
        second_half = slice(120, 240)
        seen_before = online.samples_seen

        async def drive():
            async with InferenceService(online) as service:
                return await service.partial_fit(
                    small_dataset.train_features[second_half],
                    small_dataset.train_labels[second_half],
                )

        applied = run(drive())
        assert applied == 120
        assert online.samples_seen == seen_before + 120

    def test_update_flushes_alone_and_is_counted(self, online, queries):
        async def drive():
            config = MicrobatchConfig(max_batch=16, max_wait_ms=20.0)
            async with InferenceService(online, config) as service:
                predicts = [
                    asyncio.ensure_future(service.predict(row))
                    for row in queries[:8]
                ]
                await service.partial_fit(
                    queries[:4], np.zeros(4, dtype=np.int64)
                )
                await asyncio.gather(*predicts)
                return service.request_stats(), dict(service.flush_reasons)

        stats, reasons = run(drive())
        assert stats["updates"] == 1
        assert stats["completed"] == 9  # 8 predicts + 1 update
        assert stats["dropped"] == 0
        assert reasons[FLUSH_UPDATE] == 1

    def test_fifo_serialization_predicts_see_committed_model(
        self, small_dataset, encoder, queries
    ):
        # Submit predict A, then the update, then predict B — in one event
        # loop tick, against a single-slot collector.  A must be answered by
        # the pre-update model and B by the post-update model.
        fresh = OnlineLookHD(encoder, small_dataset.n_classes)

        async def drive():
            config = MicrobatchConfig(max_batch=1, max_wait_ms=5.0)
            async with InferenceService(fresh, config) as service:
                before = asyncio.ensure_future(service.predict(queries[0]))
                update = asyncio.ensure_future(
                    service.partial_fit(
                        small_dataset.train_features, small_dataset.train_labels
                    )
                )
                after = asyncio.ensure_future(service.predict(queries[0]))
                return await asyncio.gather(before, update, after)

        before, applied, after = run(drive())
        assert applied == small_dataset.n_train
        # The untrained model is all-zero: every similarity ties at 0 and
        # argmax answers class 0.  The trained model answers the true class.
        assert before == 0
        assert after == fresh.predict(queries[0])

    def test_unsupported_model_fails_fast(self, fitted_lookhd, queries):
        async def drive():
            async with InferenceService(fitted_lookhd) as service:
                with pytest.raises(UpdateNotSupportedError, match="LookHDClassifier"):
                    await service.partial_fit(
                        queries[:2], np.zeros(2, dtype=np.int64)
                    )
                # The failed admission must not leak into the counters.
                return service.request_stats()

        stats = run(drive())
        assert stats["updates"] == 0
        assert stats["admitted"] == 0

    def test_eager_validation_rejects_bad_payloads(self, online, queries):
        async def drive():
            async with InferenceService(online) as service:
                with pytest.raises(ValueError, match="non-finite"):
                    poisoned = queries[:2].copy()
                    poisoned[0, 0] = np.nan
                    await service.partial_fit(poisoned, np.zeros(2, dtype=np.int64))
                with pytest.raises(ValueError, match="features per sample"):
                    await service.partial_fit(
                        queries[:2, :-1], np.zeros(2, dtype=np.int64)
                    )
                with pytest.raises(ValueError, match="align"):
                    await service.partial_fit(
                        queries[:3], np.zeros(2, dtype=np.int64)
                    )
                return service.request_stats()

        stats = run(drive())
        assert stats["admitted"] == 0

    def test_fleet_routes_update_to_tenant(self, small_dataset, encoder, queries):
        learners = {
            "adaptive": OnlineLookHD(encoder, small_dataset.n_classes),
            "static": OnlineLookHD(encoder, small_dataset.n_classes),
        }
        registry = ModelRegistry()
        for tenant, learner in learners.items():
            registry.publish(tenant, learner)

        async def drive():
            async with InferenceService(registry=registry) as service:
                applied = await service.partial_fit(
                    small_dataset.train_features[:50],
                    small_dataset.train_labels[:50],
                    tenant="adaptive",
                )
                return applied, {k: dict(v) for k, v in service.tenant_stats.items()}

        applied, stats = run(drive())
        assert applied == 50
        assert learners["adaptive"].samples_seen == 50
        assert learners["static"].samples_seen == 0
        assert stats["adaptive"]["updated"] == 1
        assert stats.get("static", {}).get("updated", 0) == 0

    def test_drain_resolves_pending_update(self, small_dataset, online):
        async def drive():
            config = MicrobatchConfig(max_batch=64, max_wait_ms=10_000.0)
            service = InferenceService(online, config)
            await service.start()
            pending = asyncio.ensure_future(
                service.partial_fit(
                    small_dataset.train_features[:10],
                    small_dataset.train_labels[:10],
                )
            )
            await asyncio.sleep(0)  # let the update enqueue
            await service.stop()
            applied = await pending
            return applied, service.request_stats()

        applied, stats = run(drive())
        assert applied == 10
        assert stats["dropped"] == 0


class TestServerPartialFit:
    async def _round_trip(self, server, payload):
        reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
        writer.write((json.dumps(payload) + "\n").encode())
        await writer.drain()
        response = json.loads(await reader.readline())
        writer.close()
        await writer.wait_closed()
        return response

    def _serve(self, classifier, payload, allow_partial_fit=True):
        async def drive():
            service = InferenceService(
                classifier, MicrobatchConfig(max_batch=8, max_wait_ms=5.0)
            )
            async with ServingServer(
                service, port=0, allow_partial_fit=allow_partial_fit
            ) as server:
                return await self._round_trip(server, payload)

        return run(drive())

    def test_update_over_the_wire(self, small_dataset, online):
        seen_before = online.samples_seen
        response = self._serve(
            online,
            {
                "id": 1,
                "op": "partial_fit",
                "features": small_dataset.train_features[:6].tolist(),
                "labels": small_dataset.train_labels[:6].tolist(),
            },
        )
        assert response == {"id": 1, "applied": 6}
        assert online.samples_seen == seen_before + 6

    def test_short_aliases_accepted(self, small_dataset, online):
        response = self._serve(
            online,
            {
                "op": "partial_fit",
                "x": small_dataset.train_features[:3].tolist(),
                "y": small_dataset.train_labels[:3].tolist(),
            },
        )
        assert response["applied"] == 3

    def test_gated_off_by_default(self, small_dataset, online):
        response = self._serve(
            online,
            {
                "op": "partial_fit",
                "features": small_dataset.train_features[:3].tolist(),
                "labels": small_dataset.train_labels[:3].tolist(),
            },
            allow_partial_fit=False,
        )
        assert response["error"] == "invalid"
        assert "disabled" in response["detail"]

    def test_unsupported_model_maps_to_typed_error(self, small_dataset, fitted_lookhd):
        response = self._serve(
            fitted_lookhd,
            {
                "op": "partial_fit",
                "features": small_dataset.train_features[:3].tolist(),
                "labels": small_dataset.train_labels[:3].tolist(),
            },
        )
        assert response["error"] == "unsupported"

    def test_missing_payload_pieces_rejected(self, small_dataset, online):
        no_labels = self._serve(
            online,
            {"op": "partial_fit", "features": small_dataset.train_features[:3].tolist()},
        )
        assert no_labels["error"] == "invalid"
        empty_features = self._serve(
            online, {"op": "partial_fit", "features": [], "labels": []}
        )
        assert empty_features["error"] == "invalid"

"""Sharded serving: tenant affinity, broadcast admin ops, supervised respawn.

Process-spawning tests are kept small (two shards, tiny models saved once
per module) and every assertion that involves shard death goes through
the public recovery surface — acceptor counters, health incarnations,
and the answered responses themselves — not implementation internals.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.lookhd.classifier import LookHDClassifier, LookHDConfig
from repro.lookhd.persistence import save_classifier
from repro.serving import (
    InferenceService,
    MicrobatchConfig,
    PipelinedClient,
    ServingServer,
    ShardedServer,
    shard_for,
)


class TestShardFor:
    def test_deterministic_and_in_range(self):
        for n_shards in (1, 2, 3, 8):
            for tenant in ("alpha", "beta", "edge-7", "default"):
                index = shard_for(tenant, n_shards)
                assert 0 <= index < n_shards
                assert index == shard_for(tenant, n_shards)

    def test_stable_across_processes(self):
        # CRC32, not salted hash(): the routing must survive interpreter
        # restarts, or a respawned acceptor would strand per-tenant FIFO.
        assert shard_for("alpha", 4) == 2
        assert shard_for("beta", 4) == 3

    def test_single_shard_takes_everything(self):
        assert shard_for("anything", 1) == 0


@pytest.fixture(scope="module")
def tenant_artifacts(small_dataset, tmp_path_factory):
    root = tmp_path_factory.mktemp("shard-models")
    artifacts = {}
    for tenant, seed in (("alpha", 3), ("beta", 11)):
        clf = LookHDClassifier(
            LookHDConfig(dim=512, levels=4, chunk_size=4, seed=seed)
        )
        clf.fit(small_dataset.train_features, small_dataset.train_labels)
        artifacts[tenant] = (clf, str(save_classifier(clf, root / f"{tenant}.npz")))
    return artifacts


@pytest.fixture
def queries(small_dataset):
    return np.asarray(small_dataset.test_features, dtype=np.float64)[:12]


def _models(tenant_artifacts):
    return [(tenant, path) for tenant, (_, path) in tenant_artifacts.items()]


class TestShardedServer:
    def test_predictions_match_direct_across_tenants(
        self, tenant_artifacts, queries
    ):
        expected = {
            tenant: clf.predict(queries)
            for tenant, (clf, _) in tenant_artifacts.items()
        }

        async def drive():
            async with ShardedServer(
                _models(tenant_artifacts),
                n_shards=2,
                config=MicrobatchConfig(max_batch=8, max_wait_ms=2.0),
            ) as server:
                async with await PipelinedClient.connect(
                    server.host, server.port
                ) as client:
                    # Interleave tenants so both shard links carry
                    # concurrent in-flight traffic.
                    responses = await asyncio.gather(*[
                        client.request(
                            {"op": "predict", "tenant": tenant, "x": row.tolist()}
                        )
                        for row in queries
                        for tenant in ("alpha", "beta")
                    ])
                    health = await server.health()
                stats = server.request_stats()
            return responses, health, stats

        responses, health, stats = asyncio.run(drive())
        for offset, tenant in ((0, "alpha"), (1, "beta")):
            got = np.asarray([r["prediction"] for r in responses[offset::2]])
            np.testing.assert_array_equal(got, expected[tenant])
        assert health["status"] == "ok"
        assert sorted(health["shards"]) == ["0", "1"]
        assert all(block["alive"] for block in health["shards"].values())
        assert stats["dropped"] == 0
        assert stats["failed"] == 0
        assert stats["answered"] == stats["forwarded"]

    def test_broadcast_publish_evict_and_routing_errors(
        self, tenant_artifacts, queries
    ):
        _, alpha_path = tenant_artifacts["alpha"]

        async def drive():
            async with ShardedServer(
                _models(tenant_artifacts),
                n_shards=2,
                config=MicrobatchConfig(max_batch=8, max_wait_ms=2.0),
            ) as server:
                async with await PipelinedClient.connect(
                    server.host, server.port
                ) as client:
                    published = await client.request(
                        {"op": "publish", "tenant": "alpha", "path": alpha_path}
                    )
                    listed = await client.request({"op": "list"})
                    served = await client.request(
                        {"op": "predict", "tenant": "alpha",
                         "x": queries[0].tolist()}
                    )
                    evicted = await client.request(
                        {"op": "evict", "tenant": "alpha"}
                    )
                    unknown = await client.request(
                        {"op": "predict", "tenant": "ghost",
                         "x": queries[0].tolist()}
                    )
                    invalid = await client.request({"op": "predict"})
            return published, listed, served, evicted, unknown, invalid

        published, listed, served, evicted, unknown, invalid = asyncio.run(drive())
        # Publish is a broadcast: one version everywhere, per-shard echo.
        assert published["tenant"] == "alpha" and published["version"] == 2
        assert set(published["shards"]) == {"0", "1"}
        assert all(v == 2 for v in published["shards"].values())
        assert listed["fleet"]["tenants"]["alpha"]["version"] == 2
        assert listed["n_shards"] == 2
        expected = int(tenant_artifacts["alpha"][0].predict(queries[0]))
        assert served["prediction"] == expected  # same artifact: bit-identical
        assert evicted["tenant"] == "alpha" and "released" in evicted
        assert unknown["error"] == "unknown_tenant"
        assert invalid["error"] == "invalid"

    def test_shard_kill_replays_in_flight_requests(
        self, tenant_artifacts, queries
    ):
        alpha_clf, _ = tenant_artifacts["alpha"]
        victim = shard_for("alpha", 2)
        expected = alpha_clf.predict(queries)

        async def drive():
            async with ShardedServer(
                _models(tenant_artifacts),
                n_shards=2,
                config=MicrobatchConfig(max_batch=8, max_wait_ms=20.0),
            ) as server:
                async with await PipelinedClient.connect(
                    server.host, server.port
                ) as client:
                    tasks = [
                        asyncio.create_task(client.request(
                            {"op": "predict", "tenant": "alpha",
                             "x": row.tolist()}
                        ))
                        for row in queries
                    ]
                    # Kill the shard that owns tenant alpha while its
                    # requests are in flight: the supervisor respawns the
                    # slot and the acceptor replays everything pending.
                    await asyncio.sleep(0)
                    server.kill_shard(victim)
                    responses = await asyncio.gather(*tasks)
                    health = await server.health()
                stats = server.request_stats()
            return responses, health, stats

        responses, health, stats = asyncio.run(drive())
        got = np.asarray([r["prediction"] for r in responses])
        np.testing.assert_array_equal(got, expected)  # replay is idempotent
        assert stats["respawns"] >= 1
        assert stats["dropped"] == 0
        assert health["shards"][str(victim)]["incarnation"] >= 1
        assert health["shards"][str(victim)]["alive"] is True

    def test_constructor_validation(self, tenant_artifacts):
        with pytest.raises(ValueError, match="n_shards"):
            ShardedServer(_models(tenant_artifacts), n_shards=0)
        with pytest.raises(ValueError, match="max_respawns"):
            ShardedServer(_models(tenant_artifacts), n_shards=1, max_respawns=-1)
        with pytest.raises(ValueError, match="tenant"):
            ShardedServer([("", "model.npz")], n_shards=1)
        with pytest.raises(ValueError, match="path"):
            ShardedServer([("alpha", "")], n_shards=1)


class TestPipelinedServerMode:
    def test_out_of_order_responses_matched_by_id(
        self, fitted_lookhd, queries
    ):
        expected = fitted_lookhd.predict(queries)

        async def drive():
            service = InferenceService(
                fitted_lookhd, MicrobatchConfig(max_batch=4, max_wait_ms=2.0)
            )
            async with ServingServer(service, port=0, pipelined=True) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                # Burst every request down the single connection before
                # reading anything back — the sequential protocol would
                # deadlock-or-serialise here; pipelined mode answers all.
                for i, row in enumerate(queries):
                    writer.write(
                        (json.dumps({"id": i, "features": row.tolist()}) + "\n")
                        .encode()
                    )
                await writer.drain()
                responses = [
                    json.loads(await reader.readline()) for _ in queries
                ]
                writer.close()
                await writer.wait_closed()
            return responses

        responses = asyncio.run(drive())
        by_id = {r["id"]: r["prediction"] for r in responses}
        assert sorted(by_id) == list(range(len(queries)))
        np.testing.assert_array_equal(
            np.asarray([by_id[i] for i in range(len(queries))]), expected
        )

    def test_pipelined_client_round_trip(self, fitted_lookhd, queries):
        expected = fitted_lookhd.predict(queries)

        async def drive():
            service = InferenceService(
                fitted_lookhd, MicrobatchConfig(max_batch=4, max_wait_ms=2.0)
            )
            async with ServingServer(service, port=0, pipelined=True) as server:
                async with await PipelinedClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    responses = await asyncio.gather(*[
                        client.request({"features": row.tolist()})
                        for row in queries
                    ])
            return responses

        responses = asyncio.run(drive())
        np.testing.assert_array_equal(
            np.asarray([r["prediction"] for r in responses]), expected
        )

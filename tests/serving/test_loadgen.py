"""Load generator + BENCH_serving schema: payload validity and its gates."""

from __future__ import annotations

import copy
import json

import numpy as np
import pytest

from repro.serving import (
    DEFAULT_SERVING_WORKLOADS,
    SCENARIOS,
    LoadgenConfig,
    SERVING_SCHEMA_VERSION,
    fleet_config,
    run_loadgen,
    validate_serving_payload,
    write_serving_file,
)
from repro.serving.loadgen import _tenant_schedule


@pytest.fixture(scope="module")
def smoke_payload():
    return run_loadgen(
        DEFAULT_SERVING_WORKLOADS["smoke"],
        LoadgenConfig(n_requests=240, concurrency=16, max_batch=16),
    )


def test_loadgen_payload_is_schema_valid(smoke_payload):
    assert validate_serving_payload(smoke_payload) is smoke_payload
    assert smoke_payload["schema_version"] == SERVING_SCHEMA_VERSION


def test_loadgen_checks_hold(smoke_payload):
    assert smoke_payload["checks"]["predictions_match_single"] is True
    assert smoke_payload["checks"]["zero_dropped"] is True
    requests = smoke_payload["results"]["requests"]
    assert requests["sent"] == 240
    assert requests["completed"] == 240
    assert requests["dropped"] == 0


def test_loadgen_embeds_serving_telemetry(smoke_payload):
    histograms = smoke_payload["telemetry"]["histograms"]
    assert histograms["serving.latency_seconds"]["count"] == 240
    assert (
        sum(smoke_payload["results"]["flush_reasons"].values())
        == smoke_payload["results"]["batches"]["count"]
    )


def test_write_serving_file(tmp_path):
    path = write_serving_file(
        "smoke",
        out_dir=tmp_path,
        config=LoadgenConfig(n_requests=64, concurrency=8, max_batch=8),
    )
    assert path.name == "BENCH_serving.json"
    validate_serving_payload(json.loads(path.read_text()))


def test_write_serving_file_rejects_unknown_profile(tmp_path):
    with pytest.raises(ValueError, match="unknown serving profile"):
        write_serving_file("nope", out_dir=tmp_path)


def test_loadgen_config_validation():
    with pytest.raises(ValueError, match="n_requests"):
        LoadgenConfig(n_requests=0)
    with pytest.raises(ValueError, match="concurrency"):
        LoadgenConfig(concurrency=-1)
    with pytest.raises(ValueError, match="dispatch"):
        LoadgenConfig(dispatch="fork").microbatch()


@pytest.mark.parametrize(
    ("mutate", "message"),
    [
        (lambda p: p.__setitem__("schema_version", 99), "schema_version"),
        (lambda p: p["workload"].__setitem__("dim", "big"), "workload.dim"),
        (
            lambda p: p["checks"].__setitem__("predictions_match_single", False),
            "diverged",
        ),
        (lambda p: p["checks"].__setitem__("zero_dropped", False), "dropped"),
        (
            lambda p: p["results"]["requests"].__setitem__("dropped", 3),
            "dropped",
        ),
        (
            lambda p: p["results"]["flush_reasons"].__setitem__("max_wait", 999),
            "flush_reasons",
        ),
        (
            lambda p: p["results"]["latency_seconds"].__setitem__("p50", 1e9),
            "percentiles",
        ),
        (lambda p: p.__delitem__("telemetry"), "telemetry"),
    ],
)
def test_schema_rejects_corrupted_payloads(smoke_payload, mutate, message):
    corrupted = copy.deepcopy(smoke_payload)
    mutate(corrupted)
    with pytest.raises(ValueError, match=message):
        validate_serving_payload(corrupted)


# -- fleet (multi-tenant) runs -------------------------------------------------


@pytest.fixture(scope="module")
def fleet_payload():
    return run_loadgen(
        DEFAULT_SERVING_WORKLOADS["smoke"],
        LoadgenConfig(
            n_requests=240,
            concurrency=16,
            max_batch=16,
            n_tenants=3,
            scenario="mixed",
            tenant_quota=512,
            swap_under_load=True,
        ),
    )


def test_fleet_payload_is_schema_valid(fleet_payload):
    assert validate_serving_payload(fleet_payload) is fleet_payload
    assert fleet_payload["workload"]["n_tenants"] == 3
    assert fleet_payload["workload"]["scenario"] == "mixed"


def test_fleet_gates_hold(fleet_payload):
    checks = fleet_payload["checks"]
    assert checks["predictions_match_single"] is True
    assert checks["zero_dropped"] is True
    assert checks["per_tenant_bit_identity"] is True
    assert checks["swap_zero_downtime"] is True
    tenants = fleet_payload["results"]["fleet"]["tenants"]
    assert len(tenants) == 3
    assert sum(t["sent"] for t in tenants.values()) == 240
    for stats in tenants.values():
        assert stats["dropped"] == 0
        assert stats["match_single"] is True


def test_fleet_swap_performed_with_full_availability(fleet_payload):
    swap = fleet_payload["results"]["swap"]
    assert swap["performed"] is True
    assert swap["version_after"] == swap["version_before"] + 1
    assert swap["availability"] == 1.0
    registry = fleet_payload["results"]["fleet"]["registry"]
    # 3 initial publishes + the hot-swap.
    assert registry["publishes"] == 4
    assert registry["tenants"][swap["tenant"]]["version"] == swap["version_after"]


@pytest.mark.parametrize(
    ("mutate", "message"),
    [
        (lambda p: p["results"].__delitem__("fleet"), "results.fleet"),
        (
            lambda p: next(iter(p["results"]["fleet"]["tenants"].values())).__setitem__(
                "dropped", 1
            ),
            "dropped admitted requests",
        ),
        (
            lambda p: next(iter(p["results"]["fleet"]["tenants"].values())).__setitem__(
                "match_single", False
            ),
            "diverged",
        ),
        (
            lambda p: p["checks"].__setitem__("per_tenant_bit_identity", False),
            "per_tenant_bit_identity",
        ),
        (lambda p: p["results"]["swap"].__setitem__("availability", 0.99), "1.0"),
        (
            lambda p: p["results"]["swap"].__setitem__("version_after", 9),
            "exactly 1",
        ),
        (
            lambda p: p["results"]["fleet"]["tenants"].pop(
                sorted(p["results"]["fleet"]["tenants"])[0]
            ),
            "all 3 tenants",
        ),
    ],
)
def test_schema_rejects_corrupted_fleet_payloads(fleet_payload, mutate, message):
    corrupted = copy.deepcopy(fleet_payload)
    mutate(corrupted)
    with pytest.raises(ValueError, match=message):
        validate_serving_payload(corrupted)


def test_fleet_loadgen_config_validation():
    with pytest.raises(ValueError, match="n_tenants"):
        LoadgenConfig(n_tenants=0)
    with pytest.raises(ValueError, match="scenario"):
        LoadgenConfig(scenario="tsunami")


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_tenant_schedule_is_deterministic_and_covers(scenario):
    first = _tenant_schedule(300, 3, scenario, seed=7)
    second = _tenant_schedule(300, 3, scenario, seed=7)
    np.testing.assert_array_equal(first, second)
    assert first.shape == (300,)
    assert first.min() >= 0 and first.max() <= 2
    assert len(np.unique(first)) == 3  # every tenant sees traffic


def test_heavy_tailed_schedule_skews_to_first_tenant():
    schedule = _tenant_schedule(2_000, 4, "heavy_tailed", seed=7)
    counts = np.bincount(schedule, minlength=4)
    assert counts[0] > counts[1] > counts[3]


def test_fleet_config_defaults_and_passthrough():
    smoke = fleet_config("fleet-smoke")
    assert smoke.n_tenants == 3
    assert smoke.scenario == "mixed"
    assert smoke.swap_under_load is True
    assert smoke.tenant_quota == smoke.max_queue_depth // 2
    assert fleet_config("fleet-full").n_requests > smoke.n_requests
    # An explicit fleet config is passed through untouched.
    explicit = LoadgenConfig(n_tenants=5, scenario="bursty")
    assert fleet_config("fleet-smoke", explicit) is explicit
    # A single-tenant config gets the fleet shape but keeps its knobs.
    upgraded = fleet_config("fleet-smoke", LoadgenConfig(n_requests=90, max_batch=8))
    assert upgraded.n_requests == 90
    assert upgraded.max_batch == 8
    assert upgraded.n_tenants == 3


class TestThroughputTimeline:
    """Warmup-excluded steady throughput: the anti-ramp-skew regression."""

    def test_slow_start_trace_excluded_from_headline(self):
        from repro.serving import throughput_timeline

        # Synthetic slow-start: 2 completions limp through the warmup
        # bucket (cold tables, task spin-up), 900 land evenly afterwards.
        # The naive n/elapsed figure (451 rps) under-reports the 500 rps
        # the service actually sustains once warm.
        offsets = np.concatenate(
            [np.asarray([0.05, 0.15]), np.linspace(0.2, 2.0, 900)]
        )
        timeline = throughput_timeline(offsets, elapsed=2.0)
        assert timeline["overall_rps"] == pytest.approx(451.0)
        assert timeline["steady_rps"] == pytest.approx(500.0)
        assert timeline["steady_rps"] > timeline["overall_rps"]
        assert timeline["warmup_buckets"] == 1
        assert len(timeline["buckets_rps"]) == 10
        assert timeline["bucket_seconds"] == pytest.approx(0.2)
        # The raw series keeps the ramp visible: the warmup bucket is the
        # slowest one in the trace.
        assert timeline["buckets_rps"][0] == min(timeline["buckets_rps"])

    def test_degenerate_run_falls_back_to_overall(self):
        from repro.serving import throughput_timeline

        # Everything completed inside the warmup window: there is no
        # steady state to report, so the honest answer is the overall
        # rate, flagged by warmup_buckets=0.
        timeline = throughput_timeline([0.01, 0.02, 0.03], elapsed=1.0)
        assert timeline["warmup_buckets"] == 0
        assert timeline["steady_rps"] == timeline["overall_rps"]

    def test_validation(self):
        from repro.serving import throughput_timeline

        with pytest.raises(ValueError, match="elapsed"):
            throughput_timeline([0.1], elapsed=0.0)
        with pytest.raises(ValueError, match="warmup_buckets"):
            throughput_timeline([0.1], elapsed=1.0, warmup_buckets=-1)
        with pytest.raises(ValueError, match="steady bucket"):
            throughput_timeline([0.1], elapsed=1.0, n_buckets=4, warmup_buckets=4)


@pytest.fixture(scope="module")
def open_loop_payload():
    return run_loadgen(
        DEFAULT_SERVING_WORKLOADS["smoke"],
        LoadgenConfig(
            n_requests=120, concurrency=16, max_batch=16,
            mode="open", rates=(300.0, 600.0),
        ),
    )


def test_open_loop_payload_is_schema_valid(open_loop_payload):
    assert validate_serving_payload(open_loop_payload) is open_loop_payload
    assert open_loop_payload["workload"]["mode"] == "open"
    assert open_loop_payload["service"]["n_shards"] == 1


def test_open_loop_rate_sweep_shape(open_loop_payload):
    rates = open_loop_payload["results"]["open_loop"]["rates"]
    assert [block["rate"] for block in rates] == [300.0, 600.0]
    for block in rates:
        latency = block["latency_seconds"]
        assert (
            latency["p50"] <= latency["p90"] <= latency["p99"]
            <= latency["p999"] <= latency["max"]
        )
        assert block["max_lag_seconds"] >= 0
        assert block["requests"] == 120
    # CO-safety at the accounting level: the full seeded schedule was
    # issued at every swept rate — nothing was silently skipped because
    # the generator fell behind.
    requests = open_loop_payload["results"]["requests"]
    assert requests["sent"] == 120 * 2
    assert requests["completed"] == requests["sent"]


def test_open_loop_checks_hold(open_loop_payload):
    assert open_loop_payload["checks"]["predictions_match_single"] is True
    assert open_loop_payload["checks"]["zero_dropped"] is True


@pytest.mark.parametrize(
    ("mutate", "message"),
    [
        (
            lambda p: p["workload"].__setitem__("mode", "ajar"),
            "workload.mode",
        ),
        (
            lambda p: p["results"]["open_loop"].__setitem__("rates", []),
            "non-empty list",
        ),
        (
            lambda p: p["results"]["open_loop"]["rates"][0]["latency_seconds"]
            .__setitem__("p50", 1e9),
            "ordered",
        ),
        (
            lambda p: p["results"]["open_loop"]["rates"][1]
            .__setitem__("max_lag_seconds", -0.1),
            "max_lag_seconds",
        ),
        (
            lambda p: p["results"]["requests"].__setitem__("completed", 1),
            "completed",
        ),
    ],
)
def test_schema_rejects_corrupted_open_loop_payloads(
    open_loop_payload, mutate, message
):
    corrupted = copy.deepcopy(open_loop_payload)
    mutate(corrupted)
    with pytest.raises(ValueError, match=message):
        validate_serving_payload(corrupted)


def test_open_loop_config_validation():
    with pytest.raises(ValueError, match="rate"):
        LoadgenConfig(mode="open")
    with pytest.raises(ValueError, match="rate"):
        LoadgenConfig(mode="open", rates=(0.0,))
    with pytest.raises(ValueError, match="open-loop"):
        LoadgenConfig(mode="closed", rates=(100.0,))
    with pytest.raises(ValueError, match="open-loop"):
        LoadgenConfig(mode="closed", n_shards=2)
    with pytest.raises(ValueError, match="mode"):
        LoadgenConfig(mode="ajar")
    with pytest.raises(ValueError, match="n_shards"):
        LoadgenConfig(mode="open", rates=(100.0,), n_shards=0)
    with pytest.raises(ValueError, match="kill_shard"):
        LoadgenConfig(mode="open", rates=(100.0,), kill_shard_under_load=True)

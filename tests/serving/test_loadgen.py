"""Load generator + BENCH_serving schema: payload validity and its gates."""

from __future__ import annotations

import copy
import json

import pytest

from repro.serving import (
    DEFAULT_SERVING_WORKLOADS,
    LoadgenConfig,
    SERVING_SCHEMA_VERSION,
    run_loadgen,
    validate_serving_payload,
    write_serving_file,
)


@pytest.fixture(scope="module")
def smoke_payload():
    return run_loadgen(
        DEFAULT_SERVING_WORKLOADS["smoke"],
        LoadgenConfig(n_requests=240, concurrency=16, max_batch=16),
    )


def test_loadgen_payload_is_schema_valid(smoke_payload):
    assert validate_serving_payload(smoke_payload) is smoke_payload
    assert smoke_payload["schema_version"] == SERVING_SCHEMA_VERSION


def test_loadgen_checks_hold(smoke_payload):
    assert smoke_payload["checks"]["predictions_match_single"] is True
    assert smoke_payload["checks"]["zero_dropped"] is True
    requests = smoke_payload["results"]["requests"]
    assert requests["sent"] == 240
    assert requests["completed"] == 240
    assert requests["dropped"] == 0


def test_loadgen_embeds_serving_telemetry(smoke_payload):
    histograms = smoke_payload["telemetry"]["histograms"]
    assert histograms["serving.latency_seconds"]["count"] == 240
    assert (
        sum(smoke_payload["results"]["flush_reasons"].values())
        == smoke_payload["results"]["batches"]["count"]
    )


def test_write_serving_file(tmp_path):
    path = write_serving_file(
        "smoke",
        out_dir=tmp_path,
        config=LoadgenConfig(n_requests=64, concurrency=8, max_batch=8),
    )
    assert path.name == "BENCH_serving.json"
    validate_serving_payload(json.loads(path.read_text()))


def test_write_serving_file_rejects_unknown_profile(tmp_path):
    with pytest.raises(ValueError, match="unknown serving profile"):
        write_serving_file("nope", out_dir=tmp_path)


def test_loadgen_config_validation():
    with pytest.raises(ValueError, match="n_requests"):
        LoadgenConfig(n_requests=0)
    with pytest.raises(ValueError, match="concurrency"):
        LoadgenConfig(concurrency=-1)
    with pytest.raises(ValueError, match="dispatch"):
        LoadgenConfig(dispatch="fork").microbatch()


@pytest.mark.parametrize(
    ("mutate", "message"),
    [
        (lambda p: p.__setitem__("schema_version", 99), "schema_version"),
        (lambda p: p["workload"].__setitem__("dim", "big"), "workload.dim"),
        (
            lambda p: p["checks"].__setitem__("predictions_match_single", False),
            "diverged",
        ),
        (lambda p: p["checks"].__setitem__("zero_dropped", False), "dropped"),
        (
            lambda p: p["results"]["requests"].__setitem__("dropped", 3),
            "dropped",
        ),
        (
            lambda p: p["results"]["flush_reasons"].__setitem__("max_wait", 999),
            "flush_reasons",
        ),
        (
            lambda p: p["results"]["latency_seconds"].__setitem__("p50", 1e9),
            "percentiles",
        ),
        (lambda p: p.__delitem__("telemetry"), "telemetry"),
    ],
)
def test_schema_rejects_corrupted_payloads(smoke_payload, mutate, message):
    corrupted = copy.deepcopy(smoke_payload)
    mutate(corrupted)
    with pytest.raises(ValueError, match=message):
        validate_serving_payload(corrupted)

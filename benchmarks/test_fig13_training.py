"""Fig. 13 — training speedup/energy (modelled) plus measured wall-clock.

Two complementary measurements:

* the analytical FPGA/ARM models at the paper's dataset scales, and
* pytest-benchmark wall-clock of the actual Python implementations —
  the algorithmic asymmetry (counting vs full encoding) shows up directly
  in NumPy runtime too.
"""

from repro.experiments import fig13_training_efficiency
from repro.hdc.classifier import BaselineHDClassifier
from repro.lookhd.classifier import LookHDClassifier, LookHDConfig


def test_fig13_modelled_efficiency(benchmark):
    rows = benchmark(fig13_training_efficiency.run)
    print("\n" + fig13_training_efficiency.main())
    averages = fig13_training_efficiency.averages(rows)
    # Paper: FPGA 28.3x/97.4x at q=2, 14.1x/48.7x at q=4; CPU smaller.
    # Shape assertions: LookHD wins everywhere, q=2 beats q=4.
    for platform in ("fpga", "cpu"):
        speed_q2, energy_q2 = averages[(platform, 2)]
        speed_q4, energy_q4 = averages[(platform, 4)]
        assert speed_q2 > speed_q4 > 1.0
        assert energy_q2 > energy_q4 > 1.0
    assert averages[("fpga", 2)][0] > 10  # an order of magnitude, as in the paper


def test_measured_lookhd_training_faster(benchmark, activity_small):
    data = activity_small

    def train_lookhd():
        clf = LookHDClassifier(LookHDConfig(dim=2_000, levels=4))
        clf.fit(data.train_features, data.train_labels)
        return clf

    clf = benchmark(train_lookhd)
    assert clf.score(data.test_features, data.test_labels) > 0.9


def test_measured_baseline_training(benchmark, activity_small):
    data = activity_small

    def train_baseline():
        clf = BaselineHDClassifier(dim=2_000, levels=8)
        clf.fit(data.train_features, data.train_labels)
        return clf

    clf = benchmark.pedantic(train_baseline, iterations=1, rounds=2)
    assert clf.score(data.test_features, data.test_labels) > 0.8

"""Fig. 14 — inference & retraining efficiency (modelled + measured)."""

import numpy as np

from repro.experiments import fig14_inference_retraining
from repro.hdc.classifier import BaselineHDClassifier
from repro.lookhd.classifier import LookHDClassifier, LookHDConfig


def test_fig14_modelled(benchmark):
    rows = benchmark(fig14_inference_retraining.run)
    print("\n" + fig14_inference_retraining.main())
    averages = fig14_inference_retraining.averages(rows)
    for key, (speed, energy) in averages.items():
        assert speed > 1.0, key
        assert energy > 1.0, key
    # Paper: the class-heavy apps (SPEECH k=26, PHYSICAL k=12) show the
    # largest retraining gains; FACE (k=2) the smallest.
    retrain = [r for r in rows if r.phase == "retraining" and r.platform == "fpga"]
    by_app = {r.application: r.speedup for r in retrain}
    assert min(by_app["speech"], by_app["physical"]) > by_app["face"]


def test_measured_compressed_inference_fewer_ops(activity_small):
    data = activity_small
    look = LookHDClassifier(LookHDConfig(dim=2_000, levels=4))
    look.fit(data.train_features, data.train_labels)
    base = BaselineHDClassifier(dim=2_000, levels=8)
    base.fit(data.train_features, data.train_labels)
    # Multiplication-count comparison behind the Fig. 14 speedups: the
    # compressed search needs one group product vs one per class.
    compressed_mults = look.compressed_model.multiplications_per_query()
    baseline_mults = data.n_classes * 2_000
    assert baseline_mults / compressed_mults == data.n_classes


def test_measured_lookhd_inference_latency(benchmark, activity_small):
    data = activity_small
    clf = LookHDClassifier(LookHDConfig(dim=2_000, levels=4))
    clf.fit(data.train_features, data.train_labels)
    queries = data.test_features[:64]

    predictions = benchmark(clf.predict, queries)
    assert np.mean(predictions == data.test_labels[:64]) > 0.8


def test_measured_baseline_inference_latency(benchmark, activity_small):
    data = activity_small
    clf = BaselineHDClassifier(dim=2_000, levels=8)
    clf.fit(data.train_features, data.train_labels)
    queries = data.test_features[:64]

    predictions = benchmark(clf.predict, queries)
    assert np.mean(predictions == data.test_labels[:64]) > 0.8

"""Fig. 16 — FPGA resource utilisation of LookHD phases."""

from repro.experiments import fig16_resources


def test_fig16_resources(benchmark):
    rows = benchmark(fig16_resources.run)
    print("\n" + fig16_resources.main())
    by_key = {(r.application, r.phase): r for r in rows}
    # Paper: SPEECH inference is DSP-bound, SPEECH training LUT-bound,
    # FACE (k=2) LUT-bound in both phases.
    assert by_key[("speech", "inference")].bottleneck == "dsp"
    assert by_key[("speech", "training")].bottleneck == "fabric"
    assert by_key[("face", "training")].bottleneck == "fabric"
    assert by_key[("face", "inference")].bottleneck == "fabric"
    # FACE barely touches the DSPs (k=2 → tiny associative search).
    assert by_key[("face", "inference")].dsp < 0.3

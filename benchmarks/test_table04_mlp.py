"""Table IV — LookHD vs an FPGA-accelerated MLP (DNNWeaver/FPDeep-style)."""

from repro.baselines.mlp import MLPClassifier, MLPConfig
from repro.experiments import table04_mlp


def test_table04_modelled(benchmark):
    rows = benchmark(table04_mlp.run)
    print("\n" + table04_mlp.main())
    for row in rows:
        # LookHD wins training, inference, and model size on every app.
        assert row.train_speedup > 1, row
        assert row.train_energy > 1, row
        assert row.infer_speedup > 1, row
        assert row.infer_energy > 1, row
        assert row.model_size_ratio > 1, row


def test_measured_mlp_training_slower_than_lookhd(benchmark, activity_small):
    data = activity_small

    def train_mlp():
        clf = MLPClassifier(MLPConfig(hidden_units=128, epochs=20, seed=0))
        clf.fit(data.train_features, data.train_labels)
        return clf

    clf = benchmark.pedantic(train_mlp, iterations=1, rounds=2)
    # Context for the efficiency table: the MLP is a competent comparator.
    assert clf.score(data.test_features, data.test_labels) > 0.85

"""Fig. 15 — compression scalability with the class count."""

from repro.experiments import fig15_scalability


def test_fig15_scalability(benchmark):
    points = benchmark.pedantic(
        fig15_scalability.run,
        kwargs={"class_grid": (2, 4, 8, 12, 16, 26, 36, 48), "n_queries": 1_000},
        iterations=1,
        rounds=1,
    )
    print("\n" + fig15_scalability.main())
    by_k = {p.n_classes: p for p in points}

    # Panel (a): no accuracy loss for k <= 12 (paper claim) and noise
    # grows monotonically-ish with the class count.
    for k in (2, 4, 8, 12):
        assert by_k[k].compressed_accuracy >= by_k[k].exact_accuracy - 0.005, k
    assert by_k[48].noise_to_signal > by_k[12].noise_to_signal > by_k[2].noise_to_signal
    # Graceful degradation beyond 12 (paper: <0.8% at 26, ~2% at 48).
    assert by_k[26].compressed_accuracy >= by_k[26].exact_accuracy - 0.03
    assert by_k[48].compressed_accuracy >= by_k[48].exact_accuracy - 0.08

    # Panel (b): substantial EDP improvement at every k (paper: 6.9x at
    # 12, 14.6x at 48; our roofline reproduces the ~4x scale but not the
    # growth with k — see EXPERIMENTS.md deviations) and model-size
    # reduction exactly equal to k.
    assert by_k[12].edp_improvement > 3.0
    assert by_k[48].edp_improvement > 3.0
    assert by_k[48].model_size_reduction == 48.0
    # Exact mode still shrinks the model substantially (paper: 8.7x at 48).
    assert by_k[48].exact_mode_groups == 4
    assert by_k[48].exact_mode_size_reduction == 12.0

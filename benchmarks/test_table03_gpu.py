"""Table III — LookHD (FPGA) vs GPU baseline HDC, normalised to CPU."""

from repro.experiments import table03_gpu


def test_table03_gpu(benchmark):
    comparisons = benchmark(table03_gpu.run)
    print("\n" + table03_gpu.main())
    gpu = next(c for c in comparisons if "GPU" in c.label)
    fpga_base = next(c for c in comparisons if "baseline HDC on FPGA" == c.label)
    look = next(c for c in comparisons if "LookHD on FPGA (D=2000)" == c.label)
    look_small = next(c for c in comparisons if "LookHD on FPGA (D=1000)" == c.label)

    # Paper's Table III structure:
    # GPU trains faster than the FPGA *baseline* (raw throughput) ...
    assert gpu.train_speedup_vs_cpu > 1.0
    # ... but LookHD on FPGA beats the GPU on speed ...
    assert look.train_speedup_vs_cpu > gpu.train_speedup_vs_cpu
    assert look.infer_speedup_vs_cpu > gpu.infer_speedup_vs_cpu
    # ... and by orders of magnitude on energy (paper: 67.5x / 112.7x).
    assert look.train_energy_vs_cpu / gpu.train_energy_vs_cpu > 20
    assert look.infer_energy_vs_cpu / gpu.infer_energy_vs_cpu > 20
    # Reducing D buys further speedup (paper: ~1.2x).
    assert look_small.train_speedup_vs_cpu > look.train_speedup_vs_cpu
    # The GPU is the least energy-efficient inference platform of all.
    assert gpu.infer_energy_vs_cpu < 1.0
    # The FPGA baseline comfortably beats the CPU (paper: 830x/1509x).
    assert fpga_base.train_speedup_vs_cpu > 50

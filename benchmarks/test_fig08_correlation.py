"""Fig. 8 — cosine distribution before/after class decorrelation."""

from repro.experiments import fig08_correlation


def test_fig08_correlation(benchmark):
    report = benchmark.pedantic(
        fig08_correlation.run,
        kwargs={"dim": 2_000, "train_limit": 400, "n_queries": 1_000},
        iterations=1,
        rounds=1,
    )
    print("\n" + fig08_correlation.main())
    # Paper: the original model's cosines concentrate near [0.9, 1.0];
    # decorrelation widens the distribution dramatically.
    assert report.original_mean > 0.7
    assert report.original_spread < 0.6
    assert report.decorrelated_spread > 1.5 * report.original_spread

"""Fig. 2 — phase breakdown of baseline HDC (modelled on the ARM A53)."""

import numpy as np

from repro.experiments import fig02_breakdown


def test_fig02_breakdown(benchmark):
    rows = benchmark(fig02_breakdown.run)
    print("\n" + fig02_breakdown.main())
    train_share = np.mean([r.train_encoding_share for r in rows])
    infer_share = np.mean([r.infer_search_share for r in rows])
    # Paper: encoding ~80% of training, search ~83% of inference.
    assert train_share > 0.7
    assert infer_share > 0.5

"""Fig. 9 — accuracy across compressed-retraining iterations."""

from repro.experiments import fig09_retraining


def test_fig09_retraining(benchmark):
    curves = benchmark.pedantic(
        fig09_retraining.run,
        kwargs={
            "applications": ("speech", "activity", "physical"),
            "iterations": 10,
            "dim": 2_000,
            "train_limit": 400,
        },
        iterations=1,
        rounds=1,
    )
    print("\n" + fig09_retraining.main(train_limit=400))
    for curve in curves:
        # Accuracy stabilises within ~10 iterations without collapsing:
        # the final model is at least as good as the first iteration's.
        assert curve.final_accuracy >= curve.validation_accuracy[0] - 0.03

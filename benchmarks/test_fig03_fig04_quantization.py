"""Figs. 3 & 4 — quantization boundaries, occupancy, and accuracy sweeps."""

from repro.experiments import fig03_quantization_boundaries, fig04_quantization_accuracy


def test_fig03_boundaries(benchmark):
    report = benchmark(fig03_quantization_boundaries.run)
    print("\n" + fig03_quantization_boundaries.main())
    # Paper Fig. 3: linear quantization wastes levels on the skewed tail,
    # equalized fills all levels evenly.
    assert report.linear_balance < 0.1
    assert report.equalized_balance > 0.9


def test_fig04_accuracy_vs_q(benchmark):
    rows = benchmark.pedantic(
        fig04_quantization_accuracy.run,
        kwargs={"dim": 2_000, "retrain_iterations": 3, "train_limit": 400},
        iterations=1,
        rounds=1,
    )
    print("\n" + fig04_quantization_accuracy.main(train_limit=400))
    by_q = {r.levels: r for r in rows}
    # Equalized q=4 matches or beats linear q=16 (the paper's +1.2% claim).
    assert by_q[4].equalized_accuracy >= by_q[16].linear_accuracy - 0.01
    # Linear accuracy drops at q=2 relative to q=16 (paper: −3.4%).
    assert by_q[2].linear_accuracy < by_q[16].linear_accuracy
    # Equalized is robust across the whole grid.
    assert by_q[2].equalized_accuracy > by_q[16].linear_accuracy - 0.05

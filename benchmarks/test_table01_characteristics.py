"""Table I — application characteristics and baseline HD accuracy."""

from repro.experiments import table01_characteristics


def test_table01_characteristics(benchmark):
    rows = benchmark.pedantic(
        table01_characteristics.run,
        kwargs={"dim": 2_000, "retrain_iterations": 3, "train_limit": 400},
        iterations=1,
        rounds=1,
    )
    print("\n" + table01_characteristics.main(train_limit=400))
    for row in rows:
        # Within a few points of each paper accuracy (synthetic stand-ins).
        assert abs(row.accuracy - row.paper_accuracy) < 0.08, row
    # The naive q^n lookup sizes of Table I, which motivate LookHD.
    by_app = {r.application: r for r in rows}
    assert round(by_app["speech"].log2_lookup_rows) == 2468
    assert round(by_app["activity"].log2_lookup_rows) == 1683
    assert round(by_app["physical"].log2_lookup_rows) == 156

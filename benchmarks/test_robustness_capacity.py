"""Extensions: fault-injection robustness and Eq. 5 capacity analytics.

Not paper figures, but direct quantifications of two of its claims — the
intro's "strong robustness to noise" (claim iv) and the Eq. 5 noise
decomposition used throughout Sec. IV.
"""

from repro.analysis.capacity import snr_sweep
from repro.analysis.robustness import robustness_curve
from repro.lookhd.classifier import LookHDClassifier, LookHDConfig


def test_model_bit_flip_robustness(benchmark, activity_small):
    data = activity_small
    clf = LookHDClassifier(LookHDConfig(dim=2_000, levels=4))
    clf.fit(data.train_features, data.train_labels)

    curve = benchmark.pedantic(
        robustness_curve,
        args=(clf, data.test_features, data.test_labels),
        kwargs={"flip_fractions": (0.0, 0.001, 0.01, 0.05, 0.1)},
        iterations=1,
        rounds=1,
    )
    print("\nmodel bit-flip robustness (activity):")
    for point in curve:
        print(f"  {point.flip_fraction:6.3f} of stored bits flipped -> "
              f"accuracy {point.accuracy:.3f}")
    clean = curve[0].accuracy
    by_fraction = {p.flip_fraction: p.accuracy for p in curve}
    # Graceful degradation: 1% of bits costs almost nothing.
    assert by_fraction[0.01] > clean - 0.05
    # 10% hurts, but the model is still far above chance.
    assert by_fraction[0.1] > 1.5 / data.n_classes


def test_eq5_noise_prediction(benchmark):
    points = benchmark.pedantic(
        snr_sweep,
        kwargs={"class_grid": (2, 4, 8, 16, 32), "dim": 2_000, "n_queries": 200},
        iterations=1,
        rounds=1,
    )
    print("\nEq. 5 cross-talk: predicted vs measured std")
    for point in points:
        print(f"  k={point.n_classes:2d}: predicted {point.predicted_noise_std:8.4f}  "
              f"measured {point.measured_noise_std:8.4f}  "
              f"(ratio {point.agreement:.3f})")
    for point in points:
        assert abs(point.agreement - 1.0) < 0.25, point

"""Benchmark-suite fixtures.

Run with ``pytest benchmarks/ --benchmark-only``.  Each module regenerates
one table or figure of the paper: the pytest-benchmark timings measure the
Python implementations themselves, and every test prints the paper-style
table (visible with ``-s`` or in the captured output) and asserts the
result's *shape* against the paper's claims.
"""

from __future__ import annotations

import pytest

from repro.datasets.registry import load_application


@pytest.fixture(scope="session")
def activity_small():
    """ACTIVITY at a reduced training budget — the workhorse dataset."""
    return load_application("activity", train_limit=300)


@pytest.fixture(scope="session")
def speech_small():
    return load_application("speech", train_limit=400)

"""Ablations of the design choices DESIGN.md calls out.

Each test knocks one LookHD mechanism out and shows it mattered:
position binding, decorrelation, equalized quantization, counter
factorisation, and compression group size.
"""

import time

import numpy as np
import pytest

from repro.lookhd.classifier import LookHDClassifier, LookHDConfig
from repro.lookhd.compression import CompressedModel
from repro.quantization.linear import LinearQuantizer


class TestPositionBindingAblation:
    def test_position_binding_preserves_chunk_order_information(self, benchmark):
        # Construct a task whose *only* signal is chunk order: two classes
        # use the same chunk contents in swapped order.
        rng = np.random.default_rng(0)
        low, high = rng.random(5) * 0.2, 0.8 + rng.random(5) * 0.2
        a = np.concatenate([low, high])
        b = np.concatenate([high, low])
        features = np.vstack(
            [a + 0.01 * rng.standard_normal((40, 10)), b + 0.01 * rng.standard_normal((40, 10))]
        )
        labels = np.array([0] * 40 + [1] * 40)

        def fit(bound):
            clf = LookHDClassifier(
                LookHDConfig(dim=1024, levels=4, chunk_size=5, compress=False)
            )
            clf.fit(features, labels)
            if not bound:
                # Rebuild with naive (unbound) aggregation.
                clf.encoder.bind_positions = False
                from repro.lookhd.trainer import LookHDTrainer

                trainer = LookHDTrainer(clf.encoder, 2)
                trainer.observe(features, labels)
                clf.class_model = trainer.build_model()
            return clf.score(features, labels)

        bound_accuracy = benchmark.pedantic(fit, args=(True,), iterations=1, rounds=1)
        naive_accuracy = fit(False)
        assert bound_accuracy > 0.95
        # Without position binding the two classes encode identically.
        assert naive_accuracy < 0.7


class TestDecorrelationAblation:
    def test_decorrelation_rescues_compression(self, activity_small, benchmark):
        data = activity_small

        def accuracy(decorrelate):
            clf = LookHDClassifier(
                LookHDConfig(dim=2_000, levels=4, decorrelate=decorrelate)
            )
            clf.fit(data.train_features, data.train_labels)
            return clf.score(data.test_features, data.test_labels)

        with_decorrelation = benchmark.pedantic(
            accuracy, args=(True,), iterations=1, rounds=1
        )
        without = accuracy(False)
        # Fig. 8's point: compression without decorrelation flips rankings.
        assert with_decorrelation > without + 0.1


class TestQuantizationAblation:
    def test_equalized_beats_linear_at_matched_q(self, activity_small):
        data = activity_small
        equalized = LookHDClassifier(LookHDConfig(dim=2_000, levels=4))
        equalized.fit(data.train_features, data.train_labels, retrain_iterations=2)
        linear = LookHDClassifier(
            LookHDConfig(dim=2_000, levels=4), quantizer=LinearQuantizer(4)
        )
        linear.fit(data.train_features, data.train_labels, retrain_iterations=2)
        assert equalized.score(data.test_features, data.test_labels) > linear.score(
            data.test_features, data.test_labels
        )


class TestCounterFactorisationAblation:
    def test_counter_training_faster_than_per_sample_encoding(self, speech_small):
        # The Fig. 6 engineering claim, measured on the actual NumPy code:
        # counting + one materialisation beats encoding every sample.
        data = speech_small
        clf = LookHDClassifier(LookHDConfig(dim=2_000, levels=4))

        start = time.perf_counter()
        clf.fit(data.train_features, data.train_labels)
        counter_seconds = time.perf_counter() - start

        start = time.perf_counter()
        encoded = clf.encoder.encode_many(data.train_features)
        direct = np.stack(
            [
                encoded[data.train_labels == c].sum(axis=0)
                for c in range(data.n_classes)
            ]
        )
        direct_seconds = time.perf_counter() - start

        # Bit-exact equivalence *and* a real speed advantage.
        assert np.array_equal(direct, clf.class_model.class_vectors)
        assert counter_seconds < direct_seconds * 1.5


class TestGroupSizeAblation:
    @pytest.mark.parametrize("group_size,expected_groups", [(1, 26), (12, 3), (26, 1)])
    def test_group_size_trades_size_for_noise(
        self, speech_small, group_size, expected_groups
    ):
        data = speech_small
        clf = LookHDClassifier(
            LookHDConfig(dim=2_000, levels=4, group_size=group_size)
        )
        clf.fit(data.train_features, data.train_labels)
        assert clf.compressed_model.n_groups == expected_groups

    def test_smaller_groups_more_accurate(self, speech_small):
        data = speech_small
        scores = {}
        for group_size in (26, 12, 1):
            clf = LookHDClassifier(
                LookHDConfig(dim=2_000, levels=4, group_size=group_size)
            )
            clf.fit(data.train_features, data.train_labels)
            scores[group_size] = clf.score(data.test_features, data.test_labels)
        assert scores[1] >= scores[12] - 0.02 >= scores[26] - 0.04


class TestPerFeatureQuantizationAblation:
    def test_pooled_quantization_acts_as_feature_selection(self, activity_small):
        # Pooled quantile quantization maps near-constant nuisance features
        # to a common-mode level (later removed by decorrelation), while
        # per-feature quantization spends full resolution on them.  On the
        # paper-style workloads pooling is therefore at least as good.
        from repro.quantization.per_feature import PerFeatureEqualizedQuantizer

        data = activity_small
        pooled = LookHDClassifier(LookHDConfig(dim=2_000, levels=4))
        pooled.fit(data.train_features, data.train_labels, retrain_iterations=2)
        per_feature = LookHDClassifier(
            LookHDConfig(dim=2_000, levels=4),
            quantizer=PerFeatureEqualizedQuantizer(4),
        )
        per_feature.fit(data.train_features, data.train_labels, retrain_iterations=2)
        assert pooled.score(data.test_features, data.test_labels) >= (
            per_feature.score(data.test_features, data.test_labels) - 0.02
        )

"""Fig. 12 — accuracy grid over chunk size r and quantization q (D=2000)."""

import numpy as np

from repro.experiments import fig12_chunk_quant


def test_fig12_chunk_quant(benchmark):
    points = benchmark.pedantic(
        fig12_chunk_quant.run,
        kwargs={
            "applications": ("activity", "physical"),
            "chunk_grid": (2, 3, 5),
            "level_grid": (2, 4),
            "dim": 2_000,
            "retrain_iterations": 3,
            "train_limit": 300,
        },
        iterations=1,
        rounds=1,
    )
    print("\n" + fig12_chunk_quant.main(applications=("activity", "physical"), train_limit=300))
    # Paper: r = 5 with q in {2, 4} reaches acceptable accuracy, and larger
    # chunks generally help (fewer position bindings to cut through).
    for name in ("activity", "physical"):
        subset = [p for p in points if p.application == name]
        best_r5 = max(p.accuracy for p in subset if p.chunk_size == 5)
        assert best_r5 > 0.85
        mean_r5 = np.mean([p.accuracy for p in subset if p.chunk_size == 5])
        mean_r2 = np.mean([p.accuracy for p in subset if p.chunk_size == 2])
        assert mean_r5 >= mean_r2 - 0.05

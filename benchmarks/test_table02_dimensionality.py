"""Table II — LookHD accuracy vs hypervector dimensionality (r = 5)."""

from repro.experiments import table02_dimensionality


def test_table02_dimensionality(benchmark):
    rows = benchmark.pedantic(
        table02_dimensionality.run,
        kwargs={
            "dim_grid": (1_000, 2_000, 4_000),
            "retrain_iterations": 3,
            "train_limit": 400,
            "applications": ("activity", "physical", "face", "extra"),
        },
        iterations=1,
        rounds=1,
    )
    print("\n" + table02_dimensionality.main(
        dim_grid=(1_000, 2_000, 4_000),
        train_limit=400,
        applications=("activity", "physical", "face", "extra"),
    ))
    for row in rows:
        accuracies = row.accuracies
        # Paper: < 0.3% loss from D=10,000 down to D=2,000, and D=1,000
        # within ~1%; here: the curve is flat across the grid.
        assert max(accuracies.values()) - min(accuracies.values()) < 0.06, row
        # And near the paper's D=2,000 reference accuracy.
        assert abs(accuracies[2_000] - row.paper_accuracy_d2000) < 0.08, row
